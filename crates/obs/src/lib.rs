#![warn(missing_docs)]

//! # fieldswap-obs
//!
//! First-party observability for the FieldSwap workspace: hierarchical
//! **spans** (RAII guards over a thread-keyed collector, so the scoped
//! worker pool composes cleanly), **counters / gauges / histograms**
//! (fixed-bucket histograms with p50/p90/p99), a **JSONL event sink**,
//! an end-of-run **span-tree summary** (per-phase wall time, call
//! counts, self vs. child time), and a **Prometheus-style** text
//! exposition of the metrics registry.
//!
//! The build environment is offline and the workspace vendors its own
//! dependencies, so this layer is written from scratch on `std` alone
//! and sits *below* every other crate — `docmodel` included — in the
//! dependency graph.
//!
//! ## Inert by default
//!
//! Observability must never change results. The contract, regression-
//! tested from `fieldswap-bench`:
//!
//! * A disabled (default) collector compiles each call site down to one
//!   relaxed atomic load — no clocks, no allocation, no locks.
//! * Instrumentation never touches an RNG stream; every event is
//!   derived from already-computed values and wall clocks.
//! * All output goes to stderr or to explicitly requested files, so
//!   stdout and result JSON stay byte-identical with tracing on or off.
//!
//! ## Usage
//!
//! ```
//! use fieldswap_obs as obs;
//!
//! // Opt in (the bench bins do this from --trace / --metrics):
//! obs::enable_tracing();
//! obs::enable_metrics();
//!
//! {
//!     let _outer = obs::span("train");
//!     let _inner = obs::span_tagged("epoch", || vec![("idx", "0".into())]);
//!     obs::counter_add("fieldswap_train_updates_total", 17);
//!     obs::observe("fieldswap_train_epoch_ms", 12.5);
//! } // guards drop -> span records flow into the global collector
//!
//! assert!(obs::span_summary().contains("train"));
//! assert!(obs::render_prometheus().contains("fieldswap_train_updates_total 17"));
//! ```
//!
//! The global [`Collector`] is process-wide and enable-only (flags are
//! never cleared), matching the one-shot lifecycle of the bench bins.
//! Tests that need isolation instantiate their own [`Collector`].

pub mod export;
pub mod logger;
pub mod metrics;
pub mod serve;
pub mod sink;
pub mod span;

pub use export::{render_chrome_trace, render_collapsed};
pub use logger::{Level, Verbosity};
pub use metrics::{Histogram, Registry};
pub use serve::{Handler, HttpRequest, HttpResponse, HttpServer, ObsServer, PeriodicFlush};
pub use sink::Event;
pub use span::{
    aggregate_path_durations, aggregate_spans, render_span_tree, SpanGuard, SpanNode, SpanRecord,
};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One observability domain: enable flags, the metrics registry, and the
/// event buffer spans and log lines are collected into.
///
/// The process-wide instance lives behind [`global`]; the free functions
/// at the crate root all forward to it. Tests construct their own
/// collectors for isolation.
pub struct Collector {
    tracing: AtomicBool,
    metrics: AtomicBool,
    /// Verbosity as `u8` (see [`Verbosity`]); default [`Verbosity::Normal`].
    verbosity: AtomicU8,
    registry: Registry,
    events: Mutex<Vec<Event>>,
    epoch: Instant,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A fresh collector with tracing and metrics disabled.
    pub fn new() -> Self {
        Self {
            tracing: AtomicBool::new(false),
            metrics: AtomicBool::new(false),
            verbosity: AtomicU8::new(Verbosity::Normal as u8),
            registry: Registry::new(),
            events: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Turns on span/event collection.
    pub fn enable_tracing(&self) {
        self.tracing.store(true, Ordering::Relaxed);
    }

    /// Turns on counter/gauge/histogram recording.
    pub fn enable_metrics(&self) {
        self.metrics.store(true, Ordering::Relaxed);
    }

    /// Whether spans and events are being collected.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Whether metrics are being recorded.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.load(Ordering::Relaxed)
    }

    /// Sets the stderr log verbosity.
    pub fn set_verbosity(&self, v: Verbosity) {
        self.verbosity.store(v as u8, Ordering::Relaxed);
    }

    /// The current stderr log verbosity.
    pub fn verbosity(&self) -> Verbosity {
        Verbosity::from_u8(self.verbosity.load(Ordering::Relaxed))
    }

    /// Opens a span named `name`. When tracing is disabled this is one
    /// relaxed load and an inert guard.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_tagged(name, Vec::new)
    }

    /// Opens a span with attributes. `attrs` is only evaluated when
    /// tracing is enabled, so tag construction costs nothing by default.
    pub fn span_tagged<F>(&self, name: &'static str, attrs: F) -> SpanGuard<'_>
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        if !self.tracing_enabled() {
            return SpanGuard::inert();
        }
        SpanGuard::enter(self, name, attrs())
    }

    /// Microseconds elapsed since this collector was created (the
    /// timestamp origin of every event it records).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn record_event(&self, event: Event) {
        self.events.lock().expect("obs events poisoned").push(event);
    }

    /// Adds `delta` to the counter `name` (no-op unless metrics are
    /// enabled). Names may carry inline Prometheus labels, e.g.
    /// `fieldswap_cache_hits_total{cache="phrases"}`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.metrics_enabled() {
            self.registry.counter_add(name, delta);
        }
    }

    /// Sets the gauge `name` (no-op unless metrics are enabled).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.metrics_enabled() {
            self.registry.gauge_set(name, value);
        }
    }

    /// Records `value` into the histogram `name` (no-op unless metrics
    /// are enabled).
    pub fn observe(&self, name: &str, value: f64) {
        if self.metrics_enabled() {
            self.registry.observe(name, value);
        }
    }

    /// The metrics registry (for direct inspection in tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Logs `msg` at `level`: printed to stderr when `level` passes the
    /// verbosity filter, and recorded as an event when tracing is on.
    pub fn log(&self, level: Level, msg: &str) {
        if self.verbosity().prints(level) {
            match level {
                Level::Error => eprintln!("error: {msg}"),
                Level::Warn => eprintln!("warning: {msg}"),
                Level::Info | Level::Debug => eprintln!("{msg}"),
            }
        }
        if self.tracing_enabled() {
            self.record_event(Event::Log {
                level,
                msg: msg.to_string(),
                ts_us: self.now_us(),
                thread: span::thread_id(),
            });
        }
    }

    /// Whether a `log` call at `level` would do anything (used by the
    /// macros to skip message formatting entirely).
    pub fn would_log(&self, level: Level) -> bool {
        self.verbosity().prints(level) || self.tracing_enabled()
    }

    /// Number of buffered events.
    pub fn events_len(&self) -> usize {
        self.events.lock().expect("obs events poisoned").len()
    }

    /// A snapshot of the buffered events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("obs events poisoned").clone()
    }

    /// Serializes every buffered event as one JSON object per line.
    pub fn render_jsonl(&self) -> String {
        let events = self.events.lock().expect("obs events poisoned");
        let mut out = String::new();
        for e in events.iter() {
            sink::to_json_line(e, &mut out);
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL event log to `path`.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render_jsonl())
    }

    /// Aggregates the recorded spans into per-path [`SpanNode`]s — the
    /// snapshot behind the end-of-run summary, the `/spans` endpoint,
    /// and the flamegraph export. Safe to call while a run is in
    /// flight: it sees every span closed so far.
    pub fn span_nodes(&self) -> Vec<SpanNode> {
        let events = self.events.lock().expect("obs events poisoned");
        let records: Vec<&SpanRecord> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span(r) => Some(r),
                Event::Log { .. } => None,
            })
            .collect();
        aggregate_spans(records.into_iter())
    }

    /// Aggregates the recorded spans into the end-of-run tree summary.
    pub fn span_summary(&self) -> String {
        render_span_tree(&self.span_nodes())
    }

    /// The aggregated span tree as a JSON document (the `/spans`
    /// endpoint body): `{"spans":[{"path":…,"calls":…,"total_us":…,
    /// "self_us":…},…]}`, sorted so children follow their parents.
    pub fn render_spans_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, n) in self.span_nodes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"path\":");
            sink::push_json_str(&n.path, &mut out);
            out.push_str(&format!(
                ",\"calls\":{},\"total_us\":{},\"self_us\":{}}}",
                n.calls,
                n.total_us,
                n.self_us()
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the event log as Chrome trace-event JSON (Perfetto /
    /// `chrome://tracing` loadable, one track per recording thread).
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        let events = self.events();
        std::fs::write(path, render_chrome_trace(&events))
    }

    /// Writes the span tree in collapsed-stack flamegraph format.
    pub fn write_collapsed(&self, path: &str) -> std::io::Result<()> {
        let events = self.events();
        std::fs::write(path, render_collapsed(&events))
    }

    /// Renders the metrics registry in Prometheus text exposition style.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Writes the Prometheus exposition to `path`.
    pub fn write_prometheus(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render_prometheus())
    }
}

static GLOBAL: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector every free function forwards to.
pub fn global() -> &'static Collector {
    GLOBAL.get_or_init(Collector::new)
}

/// Enables span/event collection on the global collector.
pub fn enable_tracing() {
    global().enable_tracing();
}

/// Enables metric recording on the global collector.
pub fn enable_metrics() {
    global().enable_metrics();
}

/// Whether the global collector records spans/events.
#[inline]
pub fn tracing_enabled() -> bool {
    global().tracing_enabled()
}

/// Whether the global collector records metrics.
#[inline]
pub fn metrics_enabled() -> bool {
    global().metrics_enabled()
}

/// Sets the global stderr log verbosity.
pub fn set_verbosity(v: Verbosity) {
    global().set_verbosity(v);
}

/// Opens a span on the global collector.
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// Opens a tagged span on the global collector; `attrs` is evaluated
/// only when tracing is enabled.
pub fn span_tagged<F>(name: &'static str, attrs: F) -> SpanGuard<'static>
where
    F: FnOnce() -> Vec<(&'static str, String)>,
{
    global().span_tagged(name, attrs)
}

/// Adds `delta` to a global counter (no-op when metrics are disabled).
pub fn counter_add(name: &str, delta: u64) {
    global().counter_add(name, delta);
}

/// Sets a global gauge (no-op when metrics are disabled).
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Records a histogram observation (no-op when metrics are disabled).
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// Logs a preformatted message on the global collector. Prefer the
/// [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros, which skip message
/// formatting when nothing would be printed or recorded.
pub fn log(level: Level, msg: &str) {
    global().log(level, msg);
}

/// Macro backend: formats and logs only when the message would go
/// somewhere.
pub fn log_fmt(level: Level, args: std::fmt::Arguments) {
    let c = global();
    if c.would_log(level) {
        c.log(level, &args.to_string());
    }
}

/// The global span-tree summary.
pub fn span_summary() -> String {
    global().span_summary()
}

/// The global metrics registry in Prometheus text form.
pub fn render_prometheus() -> String {
    global().render_prometheus()
}

/// Logs at [`Level::Error`] (always printed, even under `-q`).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log_fmt($crate::Level::Error, format_args!($($arg)*)) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log_fmt($crate::Level::Warn, format_args!($($arg)*)) };
}

/// Logs at [`Level::Info`] (the default progress level).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log_fmt($crate::Level::Info, format_args!($($arg)*)) };
}

/// Logs at [`Level::Debug`] (printed only under `--verbose`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log_fmt($crate::Level::Debug, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new();
        {
            let _g = c.span("nope");
            c.counter_add("n", 5);
            c.observe("h", 1.0);
            c.gauge_set("g", 2.0);
        }
        assert_eq!(c.events_len(), 0);
        assert_eq!(c.render_prometheus(), "");
        assert_eq!(c.span_summary(), "");
    }

    #[test]
    fn enabled_collector_records_spans_and_metrics() {
        let c = Collector::new();
        c.enable_tracing();
        c.enable_metrics();
        {
            let _outer = c.span("outer");
            let _inner = c.span_tagged("inner", || vec![("k", "v".into())]);
            c.counter_add("hits_total", 2);
            c.counter_add("hits_total", 3);
        }
        assert_eq!(c.events_len(), 2, "two span-end events");
        let summary = c.span_summary();
        assert!(summary.contains("outer"), "{summary}");
        assert!(summary.contains("inner"), "{summary}");
        assert!(c.render_prometheus().contains("hits_total 5"));
    }

    #[test]
    fn log_respects_verbosity_for_recording() {
        let c = Collector::new();
        c.set_verbosity(Verbosity::Quiet);
        // Not tracing: nothing recorded regardless of level.
        c.log(Level::Error, "boom");
        assert_eq!(c.events_len(), 0);
        // Tracing: recorded even when not printed.
        c.enable_tracing();
        c.log(Level::Debug, "detail");
        assert_eq!(c.events_len(), 1);
        assert!(c.would_log(Level::Debug));
    }

    #[test]
    fn concurrent_span_and_counter_recording_is_lossless() {
        // Two worker threads interleave spans and counter increments;
        // nothing may be lost and the totals must be exact.
        const PER_THREAD: usize = 500;
        let c = Collector::new();
        c.enable_tracing();
        c.enable_metrics();
        std::thread::scope(|s| {
            for t in 0..2 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let _outer = c.span("work");
                        let _inner = c.span_tagged("step", || {
                            vec![("thread", t.to_string()), ("i", i.to_string())]
                        });
                        c.counter_add("work_total", 1);
                        c.observe("step_ms", (i % 7) as f64);
                    }
                });
            }
        });
        assert_eq!(c.events_len(), 2 * 2 * PER_THREAD, "one event per span");
        assert!(c
            .render_prometheus()
            .contains(&format!("work_total {}", 2 * PER_THREAD)));
        let nodes = aggregate_spans(
            c.events()
                .iter()
                .filter_map(|e| match e {
                    Event::Span(r) => Some(r),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .into_iter(),
        );
        let work = nodes.iter().find(|n| n.path == "work").unwrap();
        let step = nodes.iter().find(|n| n.path == "work/step").unwrap();
        assert_eq!(work.calls, 2 * PER_THREAD as u64);
        assert_eq!(step.calls, 2 * PER_THREAD as u64);
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let c = Collector::new();
        c.enable_tracing();
        drop(c.span("a"));
        c.log(Level::Error, "oops \"quoted\"\npath\\x");
        let jsonl = c.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains(r#"\"quoted\""#));
        assert!(jsonl.contains(r"\n"));
        assert!(jsonl.contains(r"\\x"));
    }
}
