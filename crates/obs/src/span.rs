//! Hierarchical spans: RAII guards over a thread-keyed stack, span
//! records, and the end-of-run span-tree aggregation.
//!
//! Each thread keeps its own stack of open span names, so nesting is
//! tracked per worker and the scoped thread pool composes cleanly: a
//! span opened on a worker thread roots its own subtree there instead
//! of racing on shared parent state. A span's *path* is the `/`-joined
//! chain of open names on its thread at the moment it closes.

use crate::sink::Event;
use crate::Collector;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Dense id → OS thread name, filled in the first time each thread
/// records an event. Process-global (dense ids are process-global too)
/// so the trace exporters can label per-worker tracks.
static THREAD_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

thread_local! {
    static THREAD_ID: u64 = {
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{id}"));
        THREAD_NAMES
            .lock()
            .expect("thread names poisoned")
            .push((id, name));
        id
    };
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A small dense id for the current thread (assigned on first use).
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// A snapshot of `(dense id, thread name)` for every thread that has
/// recorded at least one event, in id-assignment order. Unnamed threads
/// report as `thread-<id>`; the pools name their workers
/// (`fieldswap-pool-N`, `fieldswap-grid-N`), which is what gives the
/// Chrome-trace export its per-worker tracks.
pub fn thread_names() -> Vec<(u64, String)> {
    THREAD_NAMES.lock().expect("thread names poisoned").clone()
}

/// One closed span, as recorded into the event sink.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// `/`-joined chain of open span names on this thread, ending in
    /// `name` — e.g. `cell/train`.
    pub path: String,
    /// The span's own name (the last path segment).
    pub name: &'static str,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start time in microseconds since the collector's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Attribute key/value pairs (e.g. the experiment coordinates).
    pub attrs: Vec<(&'static str, String)>,
}

/// RAII guard returned by [`Collector::span`]: records a [`SpanRecord`]
/// when dropped. Inert guards (tracing disabled) do nothing.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard<'a> {
    collector: Option<&'a Collector>,
    name: &'static str,
    start: Option<Instant>,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

impl<'a> SpanGuard<'a> {
    /// The do-nothing guard handed out while tracing is disabled.
    pub(crate) fn inert() -> Self {
        Self {
            collector: None,
            name: "",
            start: None,
            start_us: 0,
            attrs: Vec::new(),
        }
    }

    /// Opens a live span: pushes `name` onto this thread's stack.
    pub(crate) fn enter(
        collector: &'a Collector,
        name: &'static str,
        attrs: Vec<(&'static str, String)>,
    ) -> Self {
        STACK.with(|s| s.borrow_mut().push(name));
        Self {
            collector: Some(collector),
            name,
            start: Some(Instant::now()),
            start_us: collector.now_us(),
            attrs,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(collector) = self.collector else {
            return;
        };
        let dur_us = self
            .start
            .map(|s| s.elapsed().as_micros() as u64)
            .unwrap_or(0);
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        collector.record_event(Event::Span(SpanRecord {
            path,
            name: self.name,
            thread: thread_id(),
            start_us: self.start_us,
            dur_us,
            attrs: std::mem::take(&mut self.attrs),
        }));
    }
}

/// One aggregated node of the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Full `/`-joined path.
    pub path: String,
    /// Number of spans recorded at this path.
    pub calls: u64,
    /// Total wall time across all calls, in microseconds. Summed across
    /// threads, so a parallel phase can exceed the run's wall clock.
    pub total_us: u64,
    /// Wall time attributed to child spans, in microseconds.
    pub child_us: u64,
}

impl SpanNode {
    /// Time spent in this span itself: total minus child time
    /// (saturating, in case children raced past a parent's clock).
    pub fn self_us(&self) -> u64 {
        self.total_us.saturating_sub(self.child_us)
    }

    /// Nesting depth (number of `/` separators).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// The node's own name (last path segment).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Aggregates span records into per-path nodes, sorted by path so
/// children immediately follow their parents. Each record contributes
/// its duration to its own path's total and to its parent path's child
/// time.
pub fn aggregate_spans<'a>(records: impl Iterator<Item = &'a SpanRecord>) -> Vec<SpanNode> {
    aggregate_path_durations(records.map(|r| (r.path.as_str(), r.dur_us)))
}

/// The aggregation behind [`aggregate_spans`], keyed on bare
/// `(path, duration)` pairs so callers that parsed a trace from disk
/// (owned strings, no `&'static` names) can reuse it verbatim — the
/// `trace_report` analyzer feeds it JSONL records.
pub fn aggregate_path_durations<'a>(
    records: impl Iterator<Item = (&'a str, u64)>,
) -> Vec<SpanNode> {
    use std::collections::BTreeMap;
    // path -> (calls, total, child)
    let mut map: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for (path, dur_us) in records {
        let e = map.entry(path.to_string()).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += dur_us;
        if let Some(pos) = path.rfind('/') {
            let parent = &path[..pos];
            if let Some(p) = map.get_mut(parent) {
                p.2 += dur_us;
            } else {
                map.insert(parent.to_string(), (0, 0, dur_us));
            }
        }
    }
    map.into_iter()
        .map(|(path, (calls, total_us, child_us))| SpanNode {
            path,
            calls,
            total_us,
            child_us,
        })
        .collect()
}

/// Renders aggregated nodes as the indented end-of-run summary:
///
/// ```text
/// span tree — total wall, self (total - children), calls
/// cell                            total 1234.5ms  self   12.3ms  x9
///   train                         total  800.0ms  self  800.0ms  x9
/// ```
pub fn render_span_tree(nodes: &[SpanNode]) -> String {
    if nodes.is_empty() {
        return String::new();
    }
    let mut out = String::from("span tree — total wall, self (total - children), calls\n");
    for n in nodes {
        let indent = "  ".repeat(n.depth());
        let label = format!("{indent}{}", n.name());
        out.push_str(&format!(
            "{label:<32} total {:>9.1}ms  self {:>9.1}ms  x{}\n",
            n.total_us as f64 / 1e3,
            n.self_us() as f64 / 1e3,
            n.calls
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, dur_us: u64) -> SpanRecord {
        SpanRecord {
            path: path.to_string(),
            name: "",
            thread: 0,
            start_us: 0,
            dur_us,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn aggregation_computes_self_and_child_time() {
        let records = [
            rec("cell", 100),
            rec("cell", 140),
            rec("cell/train", 80),
            rec("cell/train", 90),
            rec("cell/eval", 40),
        ];
        let nodes = aggregate_spans(records.iter());
        assert_eq!(nodes.len(), 3);
        let cell = nodes.iter().find(|n| n.path == "cell").unwrap();
        assert_eq!(cell.calls, 2);
        assert_eq!(cell.total_us, 240);
        assert_eq!(cell.child_us, 80 + 90 + 40);
        assert_eq!(cell.self_us(), 240 - 210);
        let train = nodes.iter().find(|n| n.path == "cell/train").unwrap();
        assert_eq!(train.calls, 2);
        assert_eq!(train.total_us, 170);
        assert_eq!(train.self_us(), 170);
    }

    #[test]
    fn aggregation_orders_children_after_parents() {
        let records = [rec("b", 1), rec("a/x", 2), rec("a", 5), rec("a/x/y", 1)];
        let nodes = aggregate_spans(records.iter());
        let paths: Vec<&str> = nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["a", "a/x", "a/x/y", "b"]);
        assert_eq!(nodes[0].depth(), 0);
        assert_eq!(nodes[2].depth(), 2);
        assert_eq!(nodes[2].name(), "y");
    }

    #[test]
    fn parent_never_recorded_still_gets_child_time() {
        // A child closing on a worker thread may reference a parent path
        // that itself never closed (e.g. the run was cut short); the
        // aggregate must still account the child time somewhere visible.
        let records = [rec("run/cell", 50)];
        let nodes = aggregate_spans(records.iter());
        let parent = nodes.iter().find(|n| n.path == "run").unwrap();
        assert_eq!(parent.calls, 0);
        assert_eq!(parent.child_us, 50);
        assert_eq!(parent.self_us(), 0, "saturates instead of underflowing");
    }

    #[test]
    fn render_indents_by_depth() {
        let nodes = aggregate_spans([rec("cell", 1000), rec("cell/train", 600)].iter());
        let text = render_span_tree(&nodes);
        assert!(text.contains("\ncell "), "{text}");
        assert!(text.contains("\n  train "), "{text}");
        assert_eq!(render_span_tree(&[]), "");
    }

    #[test]
    fn nested_guards_produce_hierarchical_paths() {
        let c = Collector::new();
        c.enable_tracing();
        {
            let _a = c.span("outer");
            {
                let _b = c.span("mid");
                let _c = c.span("leaf");
            }
            let _d = c.span("mid2");
        }
        let events = c.events();
        let paths: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span(r) => Some(r.path.clone()),
                _ => None,
            })
            .collect();
        // Drop order: leaf, mid, mid2, outer.
        assert_eq!(
            paths,
            vec!["outer/mid/leaf", "outer/mid", "outer/mid2", "outer"]
        );
    }
}
