//! Log levels and the verbosity knob behind `--verbose` / `-q`.
//!
//! The logger is the single code path for human-readable progress *and*
//! machine-readable events: [`crate::Collector::log`] prints to stderr
//! when the level passes the verbosity filter and appends a
//! [`crate::Event::Log`] to the JSONL sink when tracing is enabled —
//! never to stdout, which belongs to results.

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems; printed even under `-q`.
    Error,
    /// Suspicious but non-fatal conditions.
    Warn,
    /// Default progress reporting (e.g. "wrote results.json").
    Info,
    /// Extra detail, printed only under `--verbose`.
    Debug,
}

impl Level {
    /// Lowercase name used in the JSONL event stream.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// How much of the log stream reaches stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Verbosity {
    /// `-q` / `--quiet`: errors only.
    Quiet = 0,
    /// The default: errors, warnings, and progress.
    Normal = 1,
    /// `--verbose`: everything, including debug detail.
    Verbose = 2,
}

impl Verbosity {
    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => Verbosity::Quiet,
            1 => Verbosity::Normal,
            _ => Verbosity::Verbose,
        }
    }

    /// Whether a message at `level` is printed under this verbosity.
    pub fn prints(self, level: Level) -> bool {
        match level {
            Level::Error => true,
            Level::Warn | Level::Info => self != Verbosity::Quiet,
            Level::Debug => self == Verbosity::Verbose,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_filters_by_level() {
        assert!(Verbosity::Quiet.prints(Level::Error));
        assert!(!Verbosity::Quiet.prints(Level::Warn));
        assert!(!Verbosity::Quiet.prints(Level::Info));
        assert!(Verbosity::Normal.prints(Level::Info));
        assert!(!Verbosity::Normal.prints(Level::Debug));
        assert!(Verbosity::Verbose.prints(Level::Debug));
    }

    #[test]
    fn roundtrip_u8() {
        for v in [Verbosity::Quiet, Verbosity::Normal, Verbosity::Verbose] {
            assert_eq!(Verbosity::from_u8(v as u8), v);
        }
    }
}
