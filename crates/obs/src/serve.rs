//! Live exposition: a tiny dependency-free blocking HTTP/1.1 server
//! that serves the collector's state while a run is in flight, plus a
//! periodic metrics flusher so a killed process still leaves usable
//! metrics on disk.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition of the registry.
//! * `GET /healthz` — `ok\n` (liveness for scripts and CI curls).
//! * `GET /spans`   — JSON snapshot of the aggregated live span tree.
//!
//! The server runs on one named thread and handles one connection at a
//! time — exposition traffic is a human or a scraper every few seconds,
//! not a workload. It never touches the experiment state beyond the
//! same snapshot accessors the end-of-run writers use, so turning it on
//! cannot change results (the bench suite proves fig4 byte-identity
//! with the server on vs off).

use crate::Collector;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running exposition server. Dropping the handle leaves the thread
/// running (the bench bins leak it for process lifetime); call
/// [`ObsServer::shutdown`] for an orderly stop in tests.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an
    /// ephemeral port) and starts serving `collector` on a background
    /// thread. Returns the bound address, which is the way tests
    /// discover the ephemeral port.
    pub fn start(collector: &'static Collector, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fieldswap-obs-http".into())
            .spawn(move || serve_loop(collector, listener, thread_stop))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The loop blocks in accept(); poke it awake with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(collector: &'static Collector, listener: TcpListener, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // Bound the read so a stalled client can't wedge the loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = handle_connection(collector, &mut stream);
    }
}

fn handle_connection(collector: &Collector, stream: &mut TcpStream) -> std::io::Result<()> {
    let path = match read_request_path(stream) {
        Some(p) => p,
        None => return respond(stream, 400, "text/plain", "bad request\n"),
    };
    match path.as_str() {
        "/metrics" => respond(
            stream,
            200,
            "text/plain; version=0.0.4",
            &collector.render_prometheus(),
        ),
        "/healthz" => respond(stream, 200, "text/plain", "ok\n"),
        "/spans" => respond(
            stream,
            200,
            "application/json",
            &collector.render_spans_json(),
        ),
        _ => respond(stream, 404, "text/plain", "not found\n"),
    }
}

/// Reads the request line and returns its path, tolerating whatever
/// headers follow (they are drained only as far as the first buffer).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 2048];
    let mut len = 0;
    // Read until the request line is complete (or the buffer fills).
    loop {
        let n = stream.read(&mut buf[len..]).ok()?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].contains(&b'\n') || len == buf.len() {
            break;
        }
    }
    let text = std::str::from_utf8(&buf[..len]).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Ignore any query string: /metrics?x=1 serves /metrics.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Periodically writes the Prometheus exposition to a file, so a run
/// killed mid-grid (the PR 4 resume scenario) still leaves metrics on
/// disk. Writes go through a temp file + rename, so readers never see a
/// torn file.
pub struct PeriodicFlush {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PeriodicFlush {
    /// Starts flushing `collector`'s metrics to `path` every `period`.
    /// The first write happens after one period, and an orderly
    /// [`PeriodicFlush::shutdown`] performs a final flush.
    pub fn start(
        collector: &'static Collector,
        path: &str,
        period: Duration,
    ) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let path = path.to_string();
        let handle = std::thread::Builder::new()
            .name("fieldswap-obs-flush".into())
            .spawn(move || {
                // Sleep in short slices so shutdown is prompt even with
                // a long period.
                let slice = Duration::from_millis(50).min(period);
                let mut elapsed = Duration::ZERO;
                loop {
                    std::thread::sleep(slice);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    elapsed += slice;
                    if elapsed >= period {
                        elapsed = Duration::ZERO;
                        let _ = flush_atomic(collector, &path);
                    }
                }
                let _ = flush_atomic(collector, &path);
            })?;
        Ok(Self {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the flusher after one final write.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn flush_atomic(collector: &Collector, path: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, collector.render_prometheus())?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_collector() -> &'static Collector {
        Box::leak(Box::new(Collector::new()))
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let status: u16 = out
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = out
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_healthz_and_spans() {
        let c = leaked_collector();
        c.enable_tracing();
        c.enable_metrics();
        c.counter_add("serve_hits_total", 3);
        drop(c.span("phase"));
        let server = ObsServer::start(c, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("serve_hits_total 3"), "{body}");

        let (status, body) = get(addr, "/spans");
        assert_eq!(status, 200);
        assert!(body.contains("\"path\":\"phase\""), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn rejects_non_get_requests() {
        let server = ObsServer::start(leaked_collector(), "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn periodic_flush_writes_and_final_flushes() {
        let c = leaked_collector();
        c.enable_metrics();
        c.counter_add("flush_total", 1);
        let dir = std::env::temp_dir().join(format!("obs-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let path_str = path.to_str().unwrap();
        let flusher = PeriodicFlush::start(c, path_str, Duration::from_millis(30)).unwrap();
        // Wait for at least one periodic write.
        for _ in 0..100 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(path.exists(), "periodic flush never wrote {path_str}");
        c.counter_add("flush_total", 41);
        flusher.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("flush_total 42"), "final flush stale: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
