//! Live exposition and the shared dependency-free HTTP machinery.
//!
//! Two layers live here:
//!
//! * [`HttpServer`] — a tiny blocking HTTP/1.1 server: one named accept
//!   thread, one short-lived thread per connection (so a stalled client
//!   can never delay anyone else — head-of-line blocking across
//!   connections was a real bug in the single-threaded predecessor), a
//!   request parser that understands methods, paths, and
//!   `Content-Length` bodies, and an orderly shutdown that works for
//!   wildcard binds. The `fieldswap-serve` extraction service reuses
//!   this machinery with its own handler.
//! * [`ObsServer`] — the observability exposition built on top of it:
//!
//!   * `GET /metrics` — Prometheus text exposition of the registry.
//!   * `GET /healthz` — `ok\n` (liveness for scripts and CI curls).
//!   * `GET /spans`   — JSON snapshot of the aggregated live span tree.
//!
//! The obs server never touches experiment state beyond the same
//! snapshot accessors the end-of-run writers use, so turning it on
//! cannot change results (the bench suite proves fig4 byte-identity
//! with the server on vs off).

use crate::Collector;
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection read/write timeout: bounds how long one slow client
/// can hold its *own* connection thread (other connections are
/// unaffected — each gets its own thread).
const CONN_TIMEOUT: Duration = Duration::from_secs(5);

/// Maximum concurrently-handled connections. Beyond this the server
/// answers `503` immediately instead of spawning more threads, so a
/// connection flood degrades loudly rather than exhausting the process.
const MAX_INFLIGHT: usize = 128;

/// Maximum request head (request line + headers) size.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request body. Requests declaring more get `413`
/// without the body ever being read.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request as seen by an [`HttpServer`] handler.
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// Request path with any query string stripped (`/metrics?x=1`
    /// arrives as `/metrics`).
    pub path: String,
    /// Raw request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

/// A response for an [`HttpServer`] handler to return.
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers, written verbatim after `Content-Type`
    /// (e.g. `Retry-After` on load-shedding `503`s).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A response with an explicit content type and raw body.
    pub fn with_body(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            headers: Vec::new(),
            body,
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::with_body(status, "text/plain", body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self::with_body(status, "application/json", body.into().into_bytes())
    }

    /// Adds a response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// The handler type an [`HttpServer`] serves: shared across connection
/// threads, called once per request.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A running HTTP server. Call [`HttpServer::shutdown`] for an orderly
/// stop; dropping the handle leaves the threads running (process-lifetime
/// servers leak the handle deliberately).
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and serves `handler` on a background accept thread named
    /// `name`, handing each accepted connection to a short-lived worker
    /// thread. Returns the bound address, which is how tests and bins
    /// discover the ephemeral port.
    pub fn start(addr: &str, name: &str, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_name = name.to_string();
        let handle = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || accept_loop(listener, handler, thread_stop, thread_name))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the accept thread. In-flight
    /// connection threads finish on their own (bounded by the
    /// per-connection timeout).
    ///
    /// Works for wildcard binds: a server bound to `0.0.0.0:p` is woken
    /// via `127.0.0.1:p` — connecting to the unspecified address
    /// verbatim would hang forever, which is exactly the bug this used
    /// to have. The wake connect also carries a timeout so `shutdown`
    /// can never wedge the caller.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The loop blocks in accept(); poke it awake with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The address to poke a listener awake: the bind address itself, with
/// unspecified IPs (`0.0.0.0` / `::`) mapped to the loopback of the same
/// family — you cannot *connect* to the unspecified address.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

fn accept_loop(listener: TcpListener, handler: Handler, stop: Arc<AtomicBool>, name: String) {
    let inflight = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // Bound both directions so a stalled client only ever costs its
        // own connection thread, never the process.
        let _ = stream.set_read_timeout(Some(CONN_TIMEOUT));
        let _ = stream.set_write_timeout(Some(CONN_TIMEOUT));
        if inflight.load(Ordering::Relaxed) >= MAX_INFLIGHT {
            let _ = write_response(
                &mut stream,
                &HttpResponse::text(503, "server overloaded\n").with_header("Retry-After", "1"),
            );
            continue;
        }
        // RAII so the count can never leak, whatever the connection
        // thread does — a leaked increment here would permanently eat an
        // inflight slot until the cap rejects everything.
        let permit = ConnPermit(Arc::clone(&inflight));
        permit.0.fetch_add(1, Ordering::Relaxed);
        let handler = Arc::clone(&handler);
        let spawned = std::thread::Builder::new()
            .name(format!("{name}-conn"))
            .spawn(move || {
                let _permit = permit;
                handle_connection(&handler, &mut stream);
            });
        // Thread spawn failed (resource exhaustion): the closure (and
        // its permit) is returned inside the error and dropped here.
        drop(spawned);
    }
}

/// Decrements the connection-inflight count on drop, so the count stays
/// exact even if the connection thread panics.
struct ConnPermit(Arc<AtomicUsize>);

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(handler: &Handler, stream: &mut TcpStream) {
    let response = match read_request(stream) {
        // A panicking handler must cost exactly one response, never the
        // connection thread: catch the unwind and answer `500` so the
        // client sees a definite outcome instead of a dropped socket.
        Ok(req) => catch_unwind(AssertUnwindSafe(|| handler(&req)))
            .unwrap_or_else(|_| HttpResponse::text(500, "internal server error\n")),
        // The client closed without sending anything: nothing to answer.
        Err(0) => return,
        Err(status) => HttpResponse::text(status, error_reason(status).to_string() + "\n"),
    };
    let _ = write_response(stream, &response);
}

/// Reads and parses one request. `Err(status)` asks for an error
/// response with that code; `Err(0)` means the client went away before
/// sending a request line and no response should be written.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, u16> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(431);
        }
        let n = stream.read(&mut chunk).map_err(|_| 400u16)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(0);
            }
            return Err(400);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| 400u16)?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(400u16)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_string();
    let path = parts.next().ok_or(400u16)?;
    // Ignore any query string: /metrics?x=1 serves /metrics.
    let path = path.split('?').next().unwrap_or(path).to_string();
    let mut content_length = 0usize;
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        if k.trim().eq_ignore_ascii_case("content-length") {
            content_length = v.trim().parse().map_err(|_| 400u16)?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(413);
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(|_| 400u16)?;
        if n == 0 {
            return Err(400);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(HttpRequest { method, path, body })
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn error_reason(status: u16) -> &'static str {
    match status {
        400 => "bad request",
        404 => "not found",
        405 => "method not allowed",
        413 => "payload too large",
        422 => "unprocessable request",
        431 => "request header too large",
        500 => "internal server error",
        503 => "server overloaded",
        504 => "deadline exceeded",
        _ => "error",
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn write_response(stream: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let mut header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        header.push_str(name);
        header.push_str(": ");
        header.push_str(value);
        header.push_str("\r\n");
    }
    header.push_str("\r\n");
    stream.write_all(header.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A running exposition server. Dropping the handle leaves the threads
/// running (the bench bins leak it for process lifetime); call
/// [`ObsServer::shutdown`] for an orderly stop in tests.
pub struct ObsServer {
    inner: HttpServer,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an
    /// ephemeral port) and starts serving `collector` on background
    /// threads. Returns the bound address, which is the way tests
    /// discover the ephemeral port.
    pub fn start(collector: &'static Collector, addr: &str) -> std::io::Result<Self> {
        let handler: Handler = Arc::new(move |req: &HttpRequest| {
            if req.method != "GET" {
                return HttpResponse::text(400, "bad request\n");
            }
            match req.path.as_str() {
                "/metrics" => HttpResponse::with_body(
                    200,
                    "text/plain; version=0.0.4",
                    collector.render_prometheus().into_bytes(),
                ),
                "/healthz" => HttpResponse::text(200, "ok\n"),
                "/spans" => HttpResponse::json(200, collector.render_spans_json()),
                _ => HttpResponse::text(404, "not found\n"),
            }
        });
        let inner = HttpServer::start(addr, "fieldswap-obs-http", handler)?;
        Ok(Self { inner })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops the accept loop and joins the server thread. Safe for
    /// wildcard binds (`0.0.0.0:p`) — see [`HttpServer::shutdown`].
    pub fn shutdown(self) {
        self.inner.shutdown()
    }
}

/// Periodically writes the Prometheus exposition to a file, so a run
/// killed mid-grid (the PR 4 resume scenario) still leaves metrics on
/// disk. Writes go through a temp file + rename, so readers never see a
/// torn file.
pub struct PeriodicFlush {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PeriodicFlush {
    /// Starts flushing `collector`'s metrics to `path` every `period`.
    /// The first write happens after one period, and an orderly
    /// [`PeriodicFlush::shutdown`] performs a final flush.
    pub fn start(
        collector: &'static Collector,
        path: &str,
        period: Duration,
    ) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let path = path.to_string();
        let handle = std::thread::Builder::new()
            .name("fieldswap-obs-flush".into())
            .spawn(move || {
                // Sleep in short slices so shutdown is prompt even with
                // a long period.
                let slice = Duration::from_millis(50).min(period);
                let mut elapsed = Duration::ZERO;
                loop {
                    std::thread::sleep(slice);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    elapsed += slice;
                    if elapsed >= period {
                        elapsed = Duration::ZERO;
                        let _ = flush_atomic(collector, &path);
                    }
                }
                let _ = flush_atomic(collector, &path);
            })?;
        Ok(Self {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the flusher after one final write.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn flush_atomic(collector: &Collector, path: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, collector.render_prometheus())?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn leaked_collector() -> &'static Collector {
        Box::leak(Box::new(Collector::new()))
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let status: u16 = out
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = out
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_healthz_and_spans() {
        let c = leaked_collector();
        c.enable_tracing();
        c.enable_metrics();
        c.counter_add("serve_hits_total", 3);
        drop(c.span("phase"));
        let server = ObsServer::start(c, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("serve_hits_total 3"), "{body}");

        let (status, body) = get(addr, "/spans");
        assert_eq!(status, 200);
        assert!(body.contains("\"path\":\"phase\""), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn rejects_non_get_requests() {
        let server = ObsServer::start(leaked_collector(), "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn stalled_connection_does_not_block_others() {
        // Regression test for head-of-line blocking: the old server
        // handled connections inline on the accept thread, so one
        // stalled client (connected, sending nothing) parked /healthz
        // behind a 5 s read timeout for everyone. With per-connection
        // threads, a concurrent /healthz must answer immediately while
        // the stall is still in progress.
        let server = ObsServer::start(leaked_collector(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let _stalled = TcpStream::connect(addr).unwrap();
        // Give the accept loop a moment to pick up the stalled socket.
        std::thread::sleep(Duration::from_millis(50));
        // Min-of-3 so one slow scheduler tick on a loaded CI machine
        // can't fail the test; the pre-fix behavior blocks >= 5 s.
        let mut fastest = Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (status, body) = get(addr, "/healthz");
            fastest = fastest.min(t0.elapsed());
            assert_eq!(status, 200);
            assert_eq!(body, "ok\n");
        }
        assert!(
            fastest < Duration::from_millis(100),
            "healthz behind a stalled client took {fastest:?}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_works_with_unspecified_bind() {
        // Regression test: shutdown used to poke the bind address
        // verbatim, and connecting to 0.0.0.0 never reaches the
        // listener, hanging the join forever.
        let server = ObsServer::start(leaked_collector(), "0.0.0.0:0").unwrap();
        let port = server.addr().port();
        let loopback: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let (status, _) = get(loopback, "/healthz");
        assert_eq!(status, 200);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            server.shutdown();
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("shutdown of a 0.0.0.0 listener hung");
    }

    #[test]
    fn generic_server_parses_posted_bodies() {
        let handler: Handler = Arc::new(|req: &HttpRequest| {
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            HttpResponse::text(200, String::from_utf8(req.body.clone()).unwrap())
        });
        let server = HttpServer::start("127.0.0.1:0", "test-http", handler).unwrap();
        let body = "x".repeat(10_000); // spans several reads
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with(&body));
        server.shutdown();
    }

    #[test]
    fn panicking_handler_yields_500_and_server_survives() {
        // A handler panic must be absorbed by the connection thread:
        // the panicking request gets a definite 500, the inflight count
        // does not leak, and the very next request is served normally.
        let handler: Handler = Arc::new(|req: &HttpRequest| {
            if req.path == "/boom" {
                panic!("injected handler panic");
            }
            HttpResponse::text(200, "fine\n")
        });
        let server = HttpServer::start("127.0.0.1:0", "test-http", handler).unwrap();
        let addr = server.addr();
        for _ in 0..3 {
            let (status, body) = get(addr, "/boom");
            assert_eq!(status, 500, "{body}");
            let (status, body) = get(addr, "/ok");
            assert_eq!(status, 200);
            assert_eq!(body, "fine\n");
        }
        server.shutdown();
    }

    #[test]
    fn extra_headers_are_written() {
        let handler: Handler = Arc::new(|_req: &HttpRequest| {
            HttpResponse::text(503, "busy\n").with_header("Retry-After", "7")
        });
        let server = HttpServer::start("127.0.0.1:0", "test-http", handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        assert!(out.contains("Retry-After: 7\r\n"), "{out}");
        server.shutdown();
    }

    #[test]
    fn generic_server_rejects_oversized_body_declarations() {
        let handler: Handler =
            Arc::new(|_req: &HttpRequest| unreachable!("oversized request must not reach handler"));
        let server = HttpServer::start("127.0.0.1:0", "test-http", handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        server.shutdown();
    }

    #[test]
    fn periodic_flush_writes_and_final_flushes() {
        let c = leaked_collector();
        c.enable_metrics();
        c.counter_add("flush_total", 1);
        let dir = std::env::temp_dir().join(format!("obs-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let path_str = path.to_str().unwrap();
        let flusher = PeriodicFlush::start(c, path_str, Duration::from_millis(30)).unwrap();
        // Wait for at least one periodic write.
        for _ in 0..100 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(path.exists(), "periodic flush never wrote {path_str}");
        c.counter_add("flush_total", 41);
        flusher.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("flush_total 42"), "final flush stale: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
