#![warn(missing_docs)]

//! # fieldswap-extract
//!
//! The form-extraction backbone: a **sequence-labeling** model over OCR
//! tokens, standing in for the neural sequence labeler the paper
//! fine-tunes (Section IV-B, "Backbone form extraction model").
//!
//! The model is an averaged **structured perceptron** over a linear chain
//! of BIOES tags with Viterbi decoding. Its feature set mirrors the signal
//! families that make form extractors behave the way FieldSwap expects:
//!
//! * **lexical** features of the token itself (text, shape, affixes, value
//!   type flags);
//! * **key-phrase anchor** features: the text of the nearest tokens to the
//!   left on the same line, vertically above, and the closest neighbors by
//!   off-axis distance — these carry the field-identifying key phrases;
//! * **layout** features: absolute page-grid position and line index — the
//!   memorization-prone cues that small training sets overfit to and that
//!   FieldSwap regularizes against;
//! * **corpus** features from an unsupervised pre-training pass
//!   ([`lexicon::Lexicon`]): document-frequency buckets distinguishing
//!   stable template words (key phrases) from variable values.
//!
//! Base-type **gating** prunes the tag space per token (a word can never
//! be a money amount), and the paper's **schema constraints** are applied
//! only at inference (single-instance fields keep their best-scoring
//! span), matching Section II-C.

pub mod features;
pub mod infer;
pub mod lexicon;
pub mod model;
pub mod serialize;
pub mod tags;

pub use infer::{FrozenModel, InferScratch};
pub use lexicon::Lexicon;
pub use model::{Extractor, PredictScratch, TrainConfig, TrainReport};
pub use serialize::{ModelIoError, ModelParts};
pub use tags::TagSet;

// The parallel harness trains extractors on worker threads against a
// shared lexicon; keep both `Send + Sync`.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Extractor>();
    assert_sync_send::<FrozenModel>();
    assert_sync_send::<Lexicon>();
};
