//! The BIOES tag space over a schema's fields, with the legal-transition
//! structure used by Viterbi decoding.

use fieldswap_docmodel::{Document, EntitySpan, FieldId};

/// Tag id. `0` is `O` (outside); field `f` owns the block
/// `1 + 4f .. 1 + 4f + 4` = `[B, I, E, S]`.
pub type TagId = u16;

/// The BIOES tag set for a schema with `n_fields` fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagSet {
    n_fields: usize,
    /// `prev_allowed[t]` — tags that may legally precede `t`.
    prev_allowed: Vec<Vec<TagId>>,
}

/// Offsets within a field's tag block.
const B: u16 = 0;
const I: u16 = 1;
const E: u16 = 2;
const S: u16 = 3;

impl TagSet {
    /// Builds the tag set and transition structure for `n_fields`.
    pub fn new(n_fields: usize) -> Self {
        let n_tags = 1 + 4 * n_fields;
        let mut prev_allowed: Vec<Vec<TagId>> = vec![Vec::new(); n_tags];
        // "Boundary" tags are those that may end an entity or be outside:
        // O, every E_f, every S_f. They may be followed by O, any B_g, any
        // S_g. Inside a field f, B_f -> I_f | E_f and I_f -> I_f | E_f.
        let mut boundary: Vec<TagId> = vec![0];
        for f in 0..n_fields as u16 {
            boundary.push(Self::tag_of_parts(f, E));
            boundary.push(Self::tag_of_parts(f, S));
        }
        // O, B_g, S_g can follow any boundary tag.
        for &prev in &boundary {
            prev_allowed[0].push(prev);
            for g in 0..n_fields as u16 {
                prev_allowed[Self::tag_of_parts(g, B) as usize].push(prev);
                prev_allowed[Self::tag_of_parts(g, S) as usize].push(prev);
            }
        }
        // I_f, E_f can follow B_f or I_f.
        for f in 0..n_fields as u16 {
            for inside in [I, E] {
                let t = Self::tag_of_parts(f, inside) as usize;
                prev_allowed[t].push(Self::tag_of_parts(f, B));
                prev_allowed[t].push(Self::tag_of_parts(f, I));
            }
        }
        Self {
            n_fields,
            prev_allowed,
        }
    }

    /// Number of tags (`1 + 4 * n_fields`).
    pub fn len(&self) -> usize {
        1 + 4 * self.n_fields
    }

    /// Tag sets are never empty (`O` always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    fn tag_of_parts(field: u16, part: u16) -> TagId {
        1 + 4 * field + part
    }

    /// The `B`/`I`/`E`/`S` tag for `field` (part in `0..4`).
    pub fn tag(&self, field: FieldId, part: u16) -> TagId {
        debug_assert!(part < 4);
        Self::tag_of_parts(field, part)
    }

    /// Decomposes a tag into `(field, part)`; `None` for `O`.
    pub fn parts(&self, tag: TagId) -> Option<(FieldId, u16)> {
        if tag == 0 {
            None
        } else {
            Some(((tag - 1) / 4, (tag - 1) % 4))
        }
    }

    /// The tags that may legally precede `tag`.
    pub fn prev_allowed(&self, tag: TagId) -> &[TagId] {
        &self.prev_allowed[tag as usize]
    }

    /// Whether `tag` may legally start a sequence (O, B, S).
    pub fn can_start(&self, tag: TagId) -> bool {
        match self.parts(tag) {
            None => true,
            Some((_, p)) => p == B || p == S,
        }
    }

    /// Whether `tag` may legally end a sequence (O, E, S).
    pub fn can_end(&self, tag: TagId) -> bool {
        match self.parts(tag) {
            None => true,
            Some((_, p)) => p == E || p == S,
        }
    }

    /// Encodes a document's annotations as a gold tag sequence.
    pub fn encode(&self, doc: &Document) -> Vec<TagId> {
        let mut tags = vec![0; doc.tokens.len()];
        for a in &doc.annotations {
            let len = a.end - a.start;
            if len == 1 {
                tags[a.start as usize] = self.tag(a.field, S);
            } else {
                tags[a.start as usize] = self.tag(a.field, B);
                for t in a.start + 1..a.end - 1 {
                    tags[t as usize] = self.tag(a.field, I);
                }
                tags[a.end as usize - 1] = self.tag(a.field, E);
            }
        }
        tags
    }

    /// Decodes a tag sequence back into entity spans. Tolerant of
    /// ill-formed sequences (unclosed `B`/`I` runs emit the span seen so
    /// far), though Viterbi with the legal-transition structure never
    /// produces them.
    pub fn decode(&self, tags: &[TagId]) -> Vec<EntitySpan> {
        let mut out = Vec::new();
        let mut open: Option<(FieldId, u32)> = None;
        for (i, &t) in tags.iter().enumerate() {
            let i = i as u32;
            match self.parts(t) {
                None => {
                    if let Some((f, s)) = open.take() {
                        out.push(EntitySpan::new(f, s, i));
                    }
                }
                Some((f, S)) => {
                    if let Some((pf, s)) = open.take() {
                        out.push(EntitySpan::new(pf, s, i));
                    }
                    out.push(EntitySpan::new(f, i, i + 1));
                }
                Some((f, B)) => {
                    if let Some((pf, s)) = open.take() {
                        out.push(EntitySpan::new(pf, s, i));
                    }
                    open = Some((f, i));
                }
                Some((f, I)) | Some((f, E)) => {
                    match open {
                        Some((pf, _)) if pf == f => {
                            if self.parts(t) == Some((f, E)) {
                                let (pf, s) = open.take().unwrap();
                                out.push(EntitySpan::new(pf, s, i + 1));
                            }
                        }
                        _ => {
                            // Ill-formed: treat as a fresh single/begin.
                            if let Some((pf, s)) = open.take() {
                                out.push(EntitySpan::new(pf, s, i));
                            }
                            if self.parts(t) == Some((f, E)) {
                                out.push(EntitySpan::new(f, i, i + 1));
                            } else {
                                open = Some((f, i));
                            }
                        }
                    }
                }
                Some(_) => unreachable!(),
            }
        }
        if let Some((f, s)) = open {
            out.push(EntitySpan::new(f, s, tags.len() as u32));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};

    fn doc_with_spans(n_tokens: u32, spans: &[(FieldId, u32, u32)]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for i in 0..n_tokens {
            b.push_token(Token::new(
                format!("t{i}"),
                BBox::new(10.0 * i as f32, 0.0, 10.0 * i as f32 + 8.0, 10.0),
            ));
        }
        for &(f, s, e) in spans {
            b.push_annotation(EntitySpan::new(f, s, e));
        }
        b.build()
    }

    #[test]
    fn tag_count() {
        assert_eq!(TagSet::new(3).len(), 13);
        assert_eq!(TagSet::new(0).len(), 1);
    }

    #[test]
    fn encode_single_and_multi() {
        let ts = TagSet::new(2);
        let d = doc_with_spans(6, &[(0, 1, 2), (1, 3, 6)]);
        let tags = ts.encode(&d);
        assert_eq!(tags[0], 0);
        assert_eq!(ts.parts(tags[1]), Some((0, S)));
        assert_eq!(ts.parts(tags[3]), Some((1, B)));
        assert_eq!(ts.parts(tags[4]), Some((1, I)));
        assert_eq!(ts.parts(tags[5]), Some((1, E)));
    }

    #[test]
    fn encode_decode_round_trip() {
        let ts = TagSet::new(3);
        let spans = [(0u16, 0u32, 2u32), (2, 3, 4), (1, 5, 8)];
        let d = doc_with_spans(9, &spans);
        let decoded = ts.decode(&ts.encode(&d));
        assert_eq!(decoded, d.annotations);
    }

    #[test]
    fn decode_tolerates_unclosed_run() {
        let ts = TagSet::new(1);
        // B I with no E at the end.
        let tags = vec![ts.tag(0, B), ts.tag(0, I)];
        let spans = ts.decode(&tags);
        assert_eq!(spans, vec![EntitySpan::new(0, 0, 2)]);
    }

    #[test]
    fn transition_structure() {
        let ts = TagSet::new(2);
        let b0 = ts.tag(0, B);
        let i0 = ts.tag(0, I);
        let e0 = ts.tag(0, E);
        let s1 = ts.tag(1, S);
        // I_0 can follow B_0 and I_0 only.
        assert_eq!(ts.prev_allowed(i0), &[b0, i0]);
        // B_0 can follow O, E_*, S_*.
        assert!(ts.prev_allowed(b0).contains(&0));
        assert!(ts.prev_allowed(b0).contains(&e0));
        assert!(ts.prev_allowed(b0).contains(&s1));
        assert!(!ts.prev_allowed(b0).contains(&i0));
    }

    #[test]
    fn start_end_legality() {
        let ts = TagSet::new(1);
        assert!(ts.can_start(0));
        assert!(ts.can_start(ts.tag(0, B)));
        assert!(ts.can_start(ts.tag(0, S)));
        assert!(!ts.can_start(ts.tag(0, I)));
        assert!(!ts.can_start(ts.tag(0, E)));
        assert!(ts.can_end(0));
        assert!(!ts.can_end(ts.tag(0, B)));
        assert!(ts.can_end(ts.tag(0, E)));
    }

    #[test]
    fn proptest_encode_decode_round_trip() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config::with_cases(64));
        runner
            .run(
                &(
                    1usize..5,
                    proptest::collection::vec((0u16..4, 1u32..4), 0..6),
                ),
                |(n_fields, raw_spans)| {
                    let ts = TagSet::new(n_fields);
                    // Lay the raw (field, len) list out as non-overlapping
                    // spans with 1-token gaps.
                    let mut spans = Vec::new();
                    let mut cursor = 0u32;
                    for (f, len) in raw_spans {
                        let f = f % n_fields as u16;
                        spans.push((f, cursor, cursor + len));
                        cursor += len + 1;
                    }
                    let d = doc_with_spans(cursor.max(1), &spans);
                    let decoded = ts.decode(&ts.encode(&d));
                    prop_assert_eq!(decoded, d.annotations);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn parts_round_trip() {
        let ts = TagSet::new(5);
        for f in 0..5u16 {
            for p in 0..4u16 {
                assert_eq!(ts.parts(ts.tag(f, p)), Some((f, p)));
            }
        }
        assert_eq!(ts.parts(0), None);
    }
}
