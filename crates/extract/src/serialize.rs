//! Binary serialization of trained extractors.
//!
//! Trained models are plain weight tables, so the format is a small
//! length-prefixed binary layout (magic + version + dimensions + f32
//! arrays + the lexicon). No external serialization crate is needed, and
//! round-tripping is exact (bit-identical predictions).

use crate::infer::{EmissionTable, FrozenModel, QBLOCK};
use crate::lexicon::Lexicon;
use crate::model::{Extractor, WEIGHT_DIM};
use crate::tags::TagSet;
use fieldswap_docmodel::BaseType;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"FSEXTRC1";
const FROZEN_MAGIC: &[u8; 8] = b"FSFROZN1";

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a serialized extractor or is corrupt.
    Format(String),
}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

impl ModelIoError {
    /// Rewrites a mid-parse `UnexpectedEof` as a [`ModelIoError::Format`]
    /// naming the section being read: a truncated file is a corrupt
    /// *model*, not an environment fault, and callers matching on `Io`
    /// for retry logic must not see it. Genuine I/O errors pass through.
    fn eof_in_section(self, section: &str) -> Self {
        match self {
            ModelIoError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                ModelIoError::Format(format!("truncated model: unexpected EOF in {section}"))
            }
            other => other,
        }
    }
}

/// Runs a read closure, converting an `UnexpectedEof` into a `Format`
/// error that names `section`.
fn in_section<T>(
    section: &str,
    f: impl FnOnce() -> Result<T, ModelIoError>,
) -> Result<T, ModelIoError> {
    f().map_err(|e| e.eof_in_section(section))
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
            ModelIoError::Format(m) => write!(f, "bad model format: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f32s<W: Write>(w: &mut W, xs: &[f32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R) -> Result<Vec<f32>, ModelIoError> {
    let n = read_u64(r)? as usize;
    if n > 1 << 28 {
        return Err(ModelIoError::Format(format!("array too large: {n}")));
    }
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

/// Maximum serialized string length in bytes, enforced symmetrically:
/// `write_string` refuses to emit what `read_string` would reject, so a
/// model that serializes successfully is always loadable.
const MAX_STRING_BYTES: usize = 1 << 20;

fn write_string<W: Write>(w: &mut W, s: &str, section: &str) -> Result<(), ModelIoError> {
    if s.len() > MAX_STRING_BYTES {
        return Err(ModelIoError::Format(format!(
            "string of {} bytes in {section} exceeds the {MAX_STRING_BYTES}-byte cap",
            s.len()
        )));
    }
    write_u64(w, s.len() as u64)?;
    Ok(w.write_all(s.as_bytes())?)
}

fn read_string<R: Read>(r: &mut R) -> Result<String, ModelIoError> {
    let n = read_u64(r)? as usize;
    if n > MAX_STRING_BYTES {
        return Err(ModelIoError::Format(format!("string too large: {n}")));
    }
    let mut b = vec![0u8; n];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|e| ModelIoError::Format(e.to_string()))
}

/// Serializable snapshot of the extractor internals, produced by
/// [`Extractor::to_parts`] and consumed by [`Extractor::from_parts`].
pub struct ModelParts {
    /// Number of schema fields.
    pub n_fields: usize,
    /// Field base types as `u8` discriminants (BaseType::ALL order).
    pub field_types: Vec<u8>,
    /// Emission weight table.
    pub weights: Vec<f32>,
    /// Transition weight table.
    pub transitions: Vec<f32>,
    /// DF lexicon entries `(token, count)` plus the doc count.
    pub lexicon_docs: u32,
    /// Lexicon token/count pairs.
    pub lexicon_entries: Vec<(String, u32)>,
}

impl ModelParts {
    /// Writes the parts to `w` in the binary format.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<(), ModelIoError> {
        w.write_all(MAGIC)?;
        write_u64(w, self.n_fields as u64)?;
        write_u64(w, self.field_types.len() as u64)?;
        w.write_all(&self.field_types)?;
        write_f32s(w, &self.weights)?;
        write_f32s(w, &self.transitions)?;
        write_u64(w, u64::from(self.lexicon_docs))?;
        write_u64(w, self.lexicon_entries.len() as u64)?;
        for (tok, count) in &self.lexicon_entries {
            write_string(w, tok, "lexicon entries")?;
            write_u64(w, u64::from(*count))?;
        }
        Ok(())
    }

    /// Reads parts from `r`, validating the header. A stream that ends
    /// mid-section surfaces as [`ModelIoError::Format`] naming the
    /// section, never as a bare `Io(UnexpectedEof)`.
    pub fn read<R: Read>(r: &mut R) -> Result<ModelParts, ModelIoError> {
        let mut magic = [0u8; 8];
        in_section("magic header", || Ok(r.read_exact(&mut magic)?))?;
        if &magic != MAGIC {
            return Err(ModelIoError::Format("bad magic".into()));
        }
        let n_fields = in_section("field count", || Ok(read_u64(r)?))? as usize;
        let nt = in_section("field-type count", || Ok(read_u64(r)?))? as usize;
        if nt != n_fields {
            return Err(ModelIoError::Format(format!(
                "field-type count {nt} != field count {n_fields}"
            )));
        }
        let mut field_types = vec![0u8; nt];
        in_section("field-type table", || Ok(r.read_exact(&mut field_types)?))?;
        if field_types.iter().any(|&t| t > 4) {
            return Err(ModelIoError::Format("bad base-type discriminant".into()));
        }
        let weights = in_section("emission weights", || read_f32s(r))?;
        let transitions = in_section("transition weights", || read_f32s(r))?;
        let expected_tags = 1 + 4 * n_fields;
        if transitions.len() != expected_tags * expected_tags {
            return Err(ModelIoError::Format(format!(
                "transition table size {} != {}",
                transitions.len(),
                expected_tags * expected_tags
            )));
        }
        let lexicon_docs = in_section("lexicon header", || Ok(read_u64(r)?))? as u32;
        let n_entries = in_section("lexicon header", || Ok(read_u64(r)?))? as usize;
        if n_entries > 1 << 24 {
            return Err(ModelIoError::Format("lexicon too large".into()));
        }
        let mut lexicon_entries = Vec::with_capacity(n_entries);
        in_section("lexicon entries", || {
            for _ in 0..n_entries {
                let tok = read_string(r)?;
                let count = read_u64(r)? as u32;
                lexicon_entries.push((tok, count));
            }
            Ok(())
        })?;
        Ok(ModelParts {
            n_fields,
            field_types,
            weights,
            transitions,
            lexicon_docs,
            lexicon_entries,
        })
    }
}

/// Rebuilds a lexicon from serialized entries.
pub fn lexicon_from_entries(n_docs: u32, entries: Vec<(String, u32)>) -> Lexicon {
    Lexicon::from_raw(n_docs, entries)
}

impl Extractor {
    /// Serializes the trained model to a byte vector. Fails with
    /// [`ModelIoError::Format`] when the model holds a string the
    /// deserializer would reject (e.g. an oversized lexicon token) —
    /// enforcing the cap at write time keeps every written model
    /// loadable.
    ///
    /// # Panics
    /// Panics when called on an extractor that has not finished training
    /// (averaging not applied) — persisting a half-trained model is a
    /// programming error.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ModelIoError> {
        let parts = self.to_parts();
        let mut out = Vec::new();
        parts.write(&mut out)?;
        Ok(out)
    }

    /// Deserializes a model previously produced by
    /// [`Extractor::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Extractor, ModelIoError> {
        let mut cursor = bytes;
        let parts = ModelParts::read(&mut cursor)?;
        Ok(Extractor::from_parts(parts))
    }
}

impl FrozenModel {
    /// Serializes the frozen model (f32 or quantized) to a byte vector.
    /// Only the canonical tables are stored; the permuted inference
    /// layout is rebuilt on load, so round-tripping reproduces
    /// predictions exactly for both emission variants. Fails with
    /// [`ModelIoError::Format`] when a lexicon token exceeds the string
    /// cap the deserializer enforces.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ModelIoError> {
        let (field_types, emissions, trans, lexicon) = self.serial_parts();
        let mut w: Vec<u8> = Vec::new();
        let out = &mut w;
        out.write_all(FROZEN_MAGIC)?;
        write_u64(out, field_types.len() as u64)?;
        let discr: Vec<u8> = field_types
            .iter()
            .map(|t| BaseType::ALL.iter().position(|x| x == t).unwrap() as u8)
            .collect();
        out.write_all(&discr)?;
        match emissions {
            EmissionTable::F32(weights) => {
                write_u64(out, 0)?;
                write_f32s(out, weights)?;
            }
            EmissionTable::Q8 { q, min, scale } => {
                write_u64(out, 1)?;
                write_u64(out, QBLOCK as u64)?;
                write_f32s(out, min)?;
                write_f32s(out, scale)?;
                write_u64(out, q.len() as u64)?;
                out.write_all(q)?;
            }
        }
        write_f32s(out, trans)?;
        write_u64(out, u64::from(lexicon.n_docs()))?;
        let entries = lexicon.entries();
        write_u64(out, entries.len() as u64)?;
        for (tok, count) in &entries {
            write_string(out, tok, "lexicon entries")?;
            write_u64(out, u64::from(*count))?;
        }
        Ok(w)
    }

    /// Deserializes a model previously produced by
    /// [`FrozenModel::to_bytes`], rebuilding the inference layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<FrozenModel, ModelIoError> {
        let r = &mut { bytes };
        let mut magic = [0u8; 8];
        in_section("magic header", || Ok(r.read_exact(&mut magic)?))?;
        if &magic != FROZEN_MAGIC {
            return Err(ModelIoError::Format("bad frozen-model magic".into()));
        }
        let n_fields = in_section("field count", || Ok(read_u64(r)?))? as usize;
        if n_fields > 1 << 12 {
            return Err(ModelIoError::Format("too many fields".into()));
        }
        let mut discr = vec![0u8; n_fields];
        in_section("field-type table", || Ok(r.read_exact(&mut discr)?))?;
        if discr.iter().any(|&t| t as usize >= BaseType::ALL.len()) {
            return Err(ModelIoError::Format("bad base-type discriminant".into()));
        }
        let field_types: Vec<BaseType> = discr.iter().map(|&t| BaseType::ALL[t as usize]).collect();
        let variant = in_section("emission header", || Ok(read_u64(r)?))?;
        let emissions = match variant {
            0 => {
                let weights = in_section("emission weights", || read_f32s(r))?;
                if weights.len() != WEIGHT_DIM {
                    return Err(ModelIoError::Format(format!(
                        "emission table size {} != {WEIGHT_DIM}",
                        weights.len()
                    )));
                }
                EmissionTable::F32(weights)
            }
            1 => {
                let block = in_section("quantization header", || Ok(read_u64(r)?))? as usize;
                if block != QBLOCK {
                    return Err(ModelIoError::Format(format!(
                        "quantization block {block} != {QBLOCK}"
                    )));
                }
                let min = in_section("quantization mins", || read_f32s(r))?;
                let scale = in_section("quantization scales", || read_f32s(r))?;
                let n = in_section("quantized weights", || Ok(read_u64(r)?))? as usize;
                if n != WEIGHT_DIM {
                    return Err(ModelIoError::Format(format!(
                        "quantized table size {n} != {WEIGHT_DIM}"
                    )));
                }
                let blocks = n.div_ceil(QBLOCK);
                if min.len() != blocks || scale.len() != blocks {
                    return Err(ModelIoError::Format("quantization metadata size".into()));
                }
                let mut q = vec![0u8; n];
                in_section("quantized weights", || Ok(r.read_exact(&mut q)?))?;
                EmissionTable::Q8 { q, min, scale }
            }
            v => {
                return Err(ModelIoError::Format(format!(
                    "unknown emission variant {v}"
                )))
            }
        };
        let transitions = in_section("transition weights", || read_f32s(r))?;
        let nt = 1 + 4 * n_fields;
        if transitions.len() != nt * nt {
            return Err(ModelIoError::Format(format!(
                "transition table size {} != {}",
                transitions.len(),
                nt * nt
            )));
        }
        let lexicon_docs = in_section("lexicon header", || Ok(read_u64(r)?))? as u32;
        let n_entries = in_section("lexicon header", || Ok(read_u64(r)?))? as usize;
        if n_entries > 1 << 24 {
            return Err(ModelIoError::Format("lexicon too large".into()));
        }
        let mut entries = Vec::with_capacity(n_entries);
        in_section("lexicon entries", || {
            for _ in 0..n_entries {
                let tok = read_string(r)?;
                let count = read_u64(r)? as u32;
                entries.push((tok, count));
            }
            Ok(())
        })?;
        Ok(FrozenModel::build(
            TagSet::new(n_fields),
            field_types,
            emissions,
            transitions,
            Lexicon::from_raw(lexicon_docs, entries),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferScratch;
    use crate::model::TrainConfig;
    use fieldswap_datagen::{generate, Domain};

    #[test]
    fn round_trip_preserves_predictions() {
        let train = generate(Domain::Fara, 7, 25);
        let test = generate(Domain::Fara, 8, 10);
        let lex = Lexicon::pretrain(&train.documents);
        let ex = Extractor::train_on(&train.schema, lex, &train, &[], &TrainConfig::tiny());
        let bytes = ex.to_bytes().unwrap();
        let back = Extractor::from_bytes(&bytes).unwrap();
        for d in &test.documents {
            assert_eq!(
                ex.predict(d),
                back.predict(d),
                "prediction drift on {}",
                d.id
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Extractor::from_bytes(b"not a model").is_err());
        assert!(Extractor::from_bytes(b"").is_err());
        // Right magic, truncated body.
        assert!(Extractor::from_bytes(b"FSEXTRC1\x01").is_err());
    }

    #[test]
    fn truncation_reports_format_with_section() {
        let train = generate(Domain::Fara, 11, 5);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::pretrain(&train.documents),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let bytes = ex.to_bytes().unwrap();
        let parts = ex.to_parts();

        // Section boundaries in the layout (see `ModelParts::write`).
        let after_magic = 8;
        let after_header = after_magic + 16;
        let after_types = after_header + parts.field_types.len();
        let after_weights = after_types + 8 + 4 * parts.weights.len();
        let after_transitions = after_weights + 8 + 4 * parts.transitions.len();
        let cases = [
            (3, "magic header"),
            (after_magic + 2, "field count"),
            (after_magic + 12, "field-type count"),
            (after_header + 1, "field-type table"),
            (after_types + 3, "emission weights"),
            (after_types + 1000, "emission weights"),
            (after_weights + 5, "transition weights"),
            (after_transitions + 7, "lexicon header"),
            (bytes.len() - 1, "lexicon entries"),
        ];
        for (cut, section) in cases {
            let err = Extractor::from_bytes(&bytes[..cut])
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} accepted"));
            match err {
                ModelIoError::Format(msg) => assert!(
                    msg.contains(section),
                    "cut at {cut}: expected section {section:?} in {msg:?}"
                ),
                ModelIoError::Io(e) => {
                    panic!("cut at {cut} surfaced as bare Io({e}) instead of Format")
                }
            }
        }

        // Round trip: the untruncated bytes still deserialize exactly.
        let back = Extractor::from_bytes(&bytes).unwrap();
        let probe = generate(Domain::Fara, 12, 3);
        for d in &probe.documents {
            assert_eq!(ex.predict(d), back.predict(d));
        }
    }

    #[test]
    fn real_io_errors_pass_through_unmapped() {
        // A reader failing with a non-EOF kind must stay `Io`: only
        // truncation is reinterpreted as a format problem.
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    "no",
                ))
            }
        }
        match ModelParts::read(&mut Broken) {
            Err(ModelIoError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied)
            }
            Err(other) => panic!("expected Io(PermissionDenied), got {other:?}"),
            Ok(_) => panic!("read from a broken reader succeeded"),
        }
    }

    #[test]
    fn rejects_tampered_field_types() {
        let train = generate(Domain::Fara, 9, 5);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let mut bytes = ex.to_bytes().unwrap();
        // Corrupt a base-type discriminant (first byte after magic +
        // 2 u64 lengths = 8 + 8 + 8 = offset 24).
        bytes[24] = 99;
        assert!(Extractor::from_bytes(&bytes).is_err());
    }

    #[test]
    fn frozen_round_trip_preserves_predictions() {
        let train = generate(Domain::Earnings, 21, 20);
        let test = generate(Domain::Earnings, 22, 8);
        let lex = Lexicon::pretrain(&train.documents);
        let ex = Extractor::train_on(&train.schema, lex, &train, &[], &TrainConfig::tiny());
        let frozen = ex.freeze();
        let back = FrozenModel::from_bytes(&frozen.to_bytes().unwrap()).unwrap();
        assert!(!back.is_quantized());
        let mut s1 = InferScratch::default();
        let mut s2 = InferScratch::default();
        for d in &test.documents {
            let orig = frozen.predict(d, &mut s1);
            assert_eq!(orig, back.predict(d, &mut s2), "frozen drift on {}", d.id);
            // And the loaded frozen model still matches the extractor.
            assert_eq!(orig, ex.predict(d), "extractor drift on {}", d.id);
        }
    }

    #[test]
    fn quantized_round_trip_is_exact() {
        // Quantization is lossy, but serializing a quantized model is
        // not: the int8 table round-trips byte-for-byte, so predictions
        // are identical to the in-memory quantized model.
        let train = generate(Domain::Fara, 23, 15);
        let test = generate(Domain::Fara, 24, 8);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::pretrain(&train.documents),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let q = ex.freeze().quantize();
        let back = FrozenModel::from_bytes(&q.to_bytes().unwrap()).unwrap();
        assert!(back.is_quantized());
        let mut s1 = InferScratch::default();
        let mut s2 = InferScratch::default();
        for d in &test.documents {
            assert_eq!(q.predict(d, &mut s1), back.predict(d, &mut s2));
        }
    }

    #[test]
    fn frozen_rejects_garbage() {
        assert!(FrozenModel::from_bytes(b"not a model").is_err());
        assert!(FrozenModel::from_bytes(b"").is_err());
        // An extractor blob is not a frozen blob and vice versa.
        let train = generate(Domain::Fara, 25, 5);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        assert!(FrozenModel::from_bytes(&ex.to_bytes().unwrap()).is_err());
        assert!(Extractor::from_bytes(&ex.freeze().to_bytes().unwrap()).is_err());
        // Truncations surface as Format errors naming a section.
        let bytes = ex.freeze().to_bytes().unwrap();
        for cut in [3usize, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            match FrozenModel::from_bytes(&bytes[..cut]) {
                Err(ModelIoError::Format(_)) => {}
                Err(other) => panic!("cut at {cut}: expected Format, got {other:?}"),
                Ok(_) => panic!("truncation at {cut} accepted"),
            }
        }
    }

    #[test]
    fn serialized_size_is_reasonable() {
        let train = generate(Domain::Fara, 10, 5);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let bytes = ex.to_bytes().unwrap();
        // 1M-bucket weight table of f32 dominates: ~4 MiB + small extras.
        assert!(bytes.len() > 4 << 20);
        assert!(bytes.len() < 8 << 20);
    }

    #[test]
    fn string_at_cap_round_trips() {
        // A lexicon token of exactly MAX_STRING_BYTES is legal on both
        // sides of the boundary: it writes and loads back unchanged.
        let train = generate(Domain::Fara, 13, 5);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let mut parts = ex.to_parts();
        let tok = "a".repeat(MAX_STRING_BYTES);
        parts.lexicon_entries.push((tok.clone(), 3));
        let mut bytes = Vec::new();
        parts.write(&mut bytes).unwrap();
        let back = ModelParts::read(&mut bytes.as_slice()).unwrap();
        assert!(back.lexicon_entries.contains(&(tok, 3)));
    }

    #[test]
    fn string_over_cap_fails_at_write_time() {
        // Regression test for the write/read asymmetry: an oversized
        // lexicon token used to serialize fine and then fail to load.
        // Now the *write* fails, with a Format error naming the section.
        let train = generate(Domain::Fara, 14, 5);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let mut parts = ex.to_parts();
        parts
            .lexicon_entries
            .push(("a".repeat(MAX_STRING_BYTES + 1), 3));
        let mut bytes = Vec::new();
        match parts.write(&mut bytes) {
            Err(ModelIoError::Format(msg)) => assert!(
                msg.contains("lexicon entries"),
                "error must name the offending section: {msg}"
            ),
            other => panic!("oversized token accepted at write time: {other:?}"),
        }
    }

    #[test]
    fn frozen_write_enforces_string_cap() {
        let train = generate(Domain::Fara, 15, 5);
        let big = Lexicon::from_raw(1, vec![("b".repeat(MAX_STRING_BYTES + 1), 1)]);
        let ex = Extractor::train_on(&train.schema, big, &train, &[], &TrainConfig::tiny());
        match ex.freeze().to_bytes() {
            Err(ModelIoError::Format(msg)) => assert!(msg.contains("lexicon entries"), "{msg}"),
            other => panic!("oversized frozen token accepted at write time: {other:?}"),
        }
        // At the cap it serializes and loads back.
        let ok = Lexicon::from_raw(1, vec![("b".repeat(MAX_STRING_BYTES), 1)]);
        let ex = Extractor::train_on(&train.schema, ok, &train, &[], &TrainConfig::tiny());
        let frozen = ex.freeze();
        let back = FrozenModel::from_bytes(&frozen.to_bytes().unwrap()).unwrap();
        let mut s1 = InferScratch::default();
        let mut s2 = InferScratch::default();
        for d in &train.documents {
            assert_eq!(frozen.predict(d, &mut s1), back.predict(d, &mut s2));
        }
    }
}
