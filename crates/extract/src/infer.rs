//! The frozen inference fast path.
//!
//! Training and inference have different layout needs: the trainer wants
//! a mutable hashed weight table it can poke per update, while batch
//! inference wants immutable, cache-friendly tables it can stream. This
//! module freezes a trained [`Extractor`] into a [`FrozenModel`] — a
//! read-only snapshot rearranged for throughput — and decodes documents
//! against it with reusable [`InferScratch`] working memory (zero
//! per-document allocation once warm).
//!
//! ## Layout
//!
//! *Struct-of-arrays emissions.* The trainer scores `(feature, tag)`
//! pairs by hashing each pair into the weight table per token. The frozen
//! path interns each **distinct** feature id once into a per-scratch row
//! cache: a contiguous `n_tags`-wide row of that feature's weight for
//! every tag. A token's emission vector is then the sum of its features'
//! rows — contiguous f32 adds the compiler vectorizes — instead of
//! `n_features x n_tags` scattered gathers. Because repeated features are
//! the common case (vocabulary, layout buckets), the hash-and-gather cost
//! amortizes to roughly once per distinct feature per corpus.
//!
//! *Column-permuted, row-major transitions.* Tags are stored in a
//! permuted column order `[O | B_* | S_* | I_* | E_*]`. Under BIOES
//! legality, a "boundary" previous tag (`O`, `E_f`, `S_f`) may precede
//! exactly the contiguous `[O | B_* | S_*]` block, and an "inside"
//! previous tag (`B_f`, `I_f`) may precede exactly `{I_f, E_f}` — two
//! scalar cells. The Viterbi max-plus inner loop therefore runs as one
//! dense vectorizable sweep per boundary predecessor over a row-major
//! transition block, with no legality branching and no `NEG` sentinels
//! inside the kernel.
//!
//! ## Exactness
//!
//! The f32 path is **bitwise identical** to [`Extractor::predict_with`]:
//! emission sums add the same weights in the same order; predecessors are
//! visited in ascending original tag id (the reference tie-break order)
//! with the same strict-`>` comparison; and the permuted columns only
//! relocate where per-tag results are stored, never how they are
//! computed. The property tests at the bottom of this file and the
//! `eval` crate's identity diffs pin this down.
//!
//! [`FrozenModel::quantize`] additionally compresses the emission table
//! to int8 with per-row (fixed-width block) scale/zero-point — ~4x
//! smaller, dequantized on row-cache fill, guarded by an accuracy-delta
//! test rather than an identity claim.

use crate::features::{extract_into, gate_allows, FeatureScratch, FlatFeatures};
use crate::lexicon::Lexicon;
use crate::model::{bucket, Extractor, NEG, WEIGHT_DIM};
use crate::tags::{TagId, TagSet};
use fieldswap_docmodel::{BaseType, Document, EntitySpan};
use std::sync::atomic::{AtomicU64, Ordering};

/// Quantization block width: one `(min, scale)` pair per `QBLOCK`
/// consecutive weight-table buckets (the "row" of the per-row affine
/// scheme). 2^20 buckets / 64 = 16384 rows, 128 KiB of f32 metadata.
pub(crate) const QBLOCK: usize = 64;

/// Monotone id distinguishing frozen models, so a reused [`InferScratch`]
/// can detect that its feature-row cache belongs to a different model and
/// rebuild it. Ids start at 1; a fresh scratch holds 0 and always misses.
static NEXT_MODEL_TOKEN: AtomicU64 = AtomicU64::new(1);

/// The emission weight table of a frozen model.
#[derive(Clone)]
pub(crate) enum EmissionTable {
    /// Exact f32 weights (bit-identical to the trainer's table).
    F32(Vec<f32>),
    /// Per-block affine int8 quantization: `w ~ min[b/QBLOCK] +
    /// scale[b/QBLOCK] * q[b]`.
    Q8 {
        /// Quantized weights, one byte per bucket.
        q: Vec<u8>,
        /// Per-block minimum (the affine zero point).
        min: Vec<f32>,
        /// Per-block scale; 0 for constant blocks.
        scale: Vec<f32>,
    },
}

impl EmissionTable {
    #[inline]
    fn weight(&self, b: usize) -> f32 {
        match self {
            EmissionTable::F32(w) => w[b],
            EmissionTable::Q8 { q, min, scale } => {
                let blk = b / QBLOCK;
                min[blk] + scale[blk] * f32::from(q[b])
            }
        }
    }

    fn is_quantized(&self) -> bool {
        matches!(self, EmissionTable::Q8 { .. })
    }
}

/// How a previous tag participates in the transition structure.
enum PrevKind {
    /// `O`, `E_f`, `S_f`: may precede the whole `[O | B_* | S_*]` block.
    Boundary,
    /// `B_f` or `I_f` (field id attached): may precede `I_f` and `E_f`.
    Inside(usize),
}

#[inline]
fn prev_kind(p: usize) -> PrevKind {
    if p == 0 {
        return PrevKind::Boundary;
    }
    let f = (p - 1) / 4;
    match (p - 1) % 4 {
        0 | 1 => PrevKind::Inside(f), // B, I
        _ => PrevKind::Boundary,      // E, S
    }
}

/// An immutable, inference-optimized snapshot of a trained [`Extractor`].
///
/// Build one with [`FrozenModel::freeze`] (or [`Extractor::freeze`]),
/// optionally compress it with [`FrozenModel::quantize`], and decode
/// documents with [`FrozenModel::predict`]. See the module docs for the
/// layout and the exactness guarantee.
pub struct FrozenModel {
    /// Identity token for scratch cache invalidation.
    token: u64,
    tags: TagSet,
    field_types: Vec<BaseType>,
    n_fields: usize,
    n_tags: usize,
    /// Size of the `[O | B_* | S_*]` column block (`1 + 2 * n_fields`) —
    /// exactly the tags that may start a sequence, and exactly the legal
    /// successors of every boundary tag.
    n_bs: usize,
    /// `n_bs` rounded up to the 16-lane kernel width; `trans_bs` rows and
    /// the boundary Viterbi buffers use this stride so the max-plus
    /// kernel never runs a scalar tail. Pad lanes are write-only.
    n_bs_pad: usize,
    /// `n_tags` rounded up to the 16-lane kernel width; emission rows and
    /// the emission matrix use this stride. Pad lanes hold zeros and are
    /// never read.
    stride: usize,
    /// `perm[orig_tag] = column` in the permuted layout.
    perm: Vec<u16>,
    /// `inv[column] = orig_tag`.
    inv: Vec<u16>,
    emissions: EmissionTable,
    /// Raw transition matrix `[prev * n_tags + next]` in original tag
    /// order, kept for serialization round-trips.
    trans_raw: Vec<f32>,
    /// Row-major boundary transition block: for boundary prev `p` (by
    /// original id), `trans_bs[p * n_bs_pad + col]` scores `p -> inv[col]`
    /// over the `[O | B_* | S_*]` columns. Rows of non-boundary prevs and
    /// pad columns are unused.
    trans_bs: Vec<f32>,
    /// `gate_cols[mask * n_tags + col]` — 1 when the type gate `mask`
    /// admits the tag stored in column `col`.
    gate_cols: Vec<u8>,
    /// Boundary predecessors in ascending original tag order:
    /// `trans_bs` row offsets and permuted column ids.
    bnd_offs: Vec<u32>,
    bnd_pcs: Vec<u32>,
    /// Inside predecessors in ascending original tag order.
    ins_prevs: Vec<InsPrev>,
    lexicon: Lexicon,
}

/// A precomputed inside predecessor (`B_f` or `I_f`): its permuted column
/// id, the two columns it can reach (`I_f`, `E_f`), and the two
/// transition scores.
struct InsPrev {
    pc: u32,
    ci: u32,
    ce: u32,
    ti: f32,
    te: f32,
}

/// Reusable working memory for [`FrozenModel::predict`]: feature
/// extraction buffers, the persistent feature-row cache, the emission
/// matrix, and the Viterbi state. One scratch serves any number of
/// documents; the row cache survives across documents (that is the point)
/// and is rebuilt automatically when used with a different model.
#[derive(Default)]
pub struct InferScratch {
    feats: FlatFeatures,
    fscratch: FeatureScratch,
    cache: RowCache,
    /// Interned row indices of the current token's features.
    row_idx: Vec<u32>,
    /// Per-step staging of boundary predecessors (score, transition row
    /// offset, permuted column id), in ascending original tag order.
    bs_s: Vec<f32>,
    bs_off: Vec<u32>,
    bs_pc: Vec<u32>,
    /// Emission matrix `[token * stride + col]`, permuted column order.
    e: Vec<f32>,
    score: Vec<f32>,
    next: Vec<f32>,
    /// Boundary-block Viterbi maxima (`n_bs_pad` wide; boundary prevs
    /// only ever reach the `[O | B_* | S_*]` columns).
    best_bs: Vec<f32>,
    bp_bs: Vec<u32>,
    /// Inside-block Viterbi maxima (indexed by column; only the `I_*` /
    /// `E_*` columns are ever written, by `B_f`/`I_f` prevs).
    best_ie: Vec<f32>,
    bp_ie: Vec<u32>,
    /// Backpointers `[token * n_tags + col]`, storing predecessor columns.
    back: Vec<u16>,
    tags_buf: Vec<TagId>,
    /// Token of the model the row cache was built for (0 = none).
    model_token: u64,
}

/// Open-addressed map from feature id to an interned emission row.
/// Persistent across documents inside an [`InferScratch`].
#[derive(Default)]
struct RowCache {
    keys: Vec<u64>,
    /// Row index per slot; `u32::MAX` marks an empty slot.
    slots: Vec<u32>,
    mask: usize,
    len: usize,
    /// Interned rows, `stride` f32 each, in insertion order.
    rows: Vec<f32>,
    stride: usize,
}

impl RowCache {
    fn reset(&mut self, stride: usize) {
        self.stride = stride.max(1);
        self.len = 0;
        self.rows.clear();
        if self.slots.is_empty() {
            self.keys = vec![0; 1024];
            self.slots = vec![u32::MAX; 1024];
            self.mask = 1023;
        } else {
            self.slots.fill(u32::MAX);
        }
    }

    #[inline]
    fn hash(key: u64) -> usize {
        // SplitMix64-style finalizer; the FNV feature ids are decent but
        // this cheap avalanche protects the open addressing either way.
        let mut z = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z ^ (z >> 29)) as usize
    }

    /// The row index for `key`, appending a fresh zeroed row when absent.
    /// Returns `(index, inserted)`; the caller fills a fresh row in place.
    #[inline]
    fn get_or_insert(&mut self, key: u64) -> (u32, bool) {
        if self.len * 4 >= (self.mask + 1) * 3 {
            self.grow();
        }
        let mut i = Self::hash(key) & self.mask;
        loop {
            let v = self.slots[i];
            if v == u32::MAX {
                let idx = self.len as u32;
                self.keys[i] = key;
                self.slots[i] = idx;
                self.len += 1;
                self.rows.resize(self.len * self.stride, 0.0);
                return (idx, true);
            }
            if self.keys[i] == key {
                return (v, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = ((self.mask + 1) * 2).max(1024);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![u32::MAX; new_cap]);
        self.mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_slots) {
            if v != u32::MAX {
                let mut i = Self::hash(k) & self.mask;
                while self.slots[i] != u32::MAX {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.slots[i] = v;
            }
        }
    }
}

impl Extractor {
    /// Freezes the current weights into a [`FrozenModel`]. Equivalent to
    /// [`FrozenModel::freeze`].
    pub fn freeze(&self) -> FrozenModel {
        FrozenModel::freeze(self)
    }
}

impl FrozenModel {
    /// Snapshots a trained extractor into the frozen inference layout.
    /// The f32 frozen path decodes bit-identically to
    /// [`Extractor::predict_with`] on the source extractor.
    pub fn freeze(ex: &Extractor) -> FrozenModel {
        let (tags, field_types, w, trans, lexicon) = ex.frozen_parts();
        fieldswap_obs::counter_add("fieldswap_infer_freeze_total", 1);
        Self::build(
            tags.clone(),
            field_types.to_vec(),
            EmissionTable::F32(w.to_vec()),
            trans.to_vec(),
            lexicon.clone(),
        )
    }

    pub(crate) fn build(
        tags: TagSet,
        field_types: Vec<BaseType>,
        emissions: EmissionTable,
        trans_raw: Vec<f32>,
        lexicon: Lexicon,
    ) -> FrozenModel {
        let n_fields = tags.n_fields();
        let nt = tags.len();
        assert_eq!(trans_raw.len(), nt * nt, "transition table size mismatch");
        let n_bs = 1 + 2 * n_fields;
        let mut perm = vec![0u16; nt];
        let mut inv = vec![0u16; nt];
        for (orig, p) in perm.iter_mut().enumerate() {
            let col = if orig == 0 {
                0
            } else {
                let f = (orig - 1) / 4;
                match (orig - 1) % 4 {
                    0 => 1 + f,                // B
                    3 => 1 + n_fields + f,     // S
                    1 => 1 + 2 * n_fields + f, // I
                    _ => 1 + 3 * n_fields + f, // E
                }
            };
            *p = col as u16;
            inv[col] = orig as u16;
        }
        let n_bs_pad = (n_bs + 15) & !15;
        let stride = (nt + 15) & !15;
        let mut trans_bs = vec![0.0f32; nt * n_bs_pad];
        let mut trans_ie = vec![[0.0f32; 2]; nt];
        for p in 0..nt {
            match prev_kind(p) {
                PrevKind::Boundary => {
                    for col in 0..n_bs {
                        trans_bs[p * n_bs_pad + col] = trans_raw[p * nt + inv[col] as usize];
                    }
                }
                PrevKind::Inside(f) => {
                    trans_ie[p] = [
                        trans_raw[p * nt + (1 + 4 * f + 1)], // p -> I_f
                        trans_raw[p * nt + (1 + 4 * f + 2)], // p -> E_f
                    ];
                }
            }
        }
        let mut bnd_offs = Vec::new();
        let mut bnd_pcs = Vec::new();
        let mut ins_prevs = Vec::new();
        for p in 0..nt {
            match prev_kind(p) {
                PrevKind::Boundary => {
                    bnd_offs.push((p * n_bs_pad) as u32);
                    bnd_pcs.push(perm[p] as u32);
                }
                PrevKind::Inside(f) => ins_prevs.push(InsPrev {
                    pc: perm[p] as u32,
                    ci: (1 + 2 * n_fields + f) as u32,
                    ce: (1 + 3 * n_fields + f) as u32,
                    ti: trans_ie[p][0],
                    te: trans_ie[p][1],
                }),
            }
        }
        let mut gate_cols = vec![0u8; 256 * nt];
        for mask in 0..256usize {
            for orig in 0..nt {
                let ok = match tags.parts(orig as u16) {
                    None => true,
                    Some((f, _)) => gate_allows(mask as u8, field_types[f as usize]),
                };
                gate_cols[mask * nt + perm[orig] as usize] = u8::from(ok);
            }
        }
        FrozenModel {
            token: NEXT_MODEL_TOKEN.fetch_add(1, Ordering::Relaxed),
            tags,
            field_types,
            n_fields,
            n_tags: nt,
            n_bs,
            n_bs_pad,
            stride,
            perm,
            inv,
            emissions,
            trans_raw,
            trans_bs,
            gate_cols,
            bnd_offs,
            bnd_pcs,
            ins_prevs,
            lexicon,
        }
    }

    /// A copy of this model with the emission table quantized to int8
    /// (per-[`QBLOCK`] affine min/scale). Quantizing an already-quantized
    /// model is an identity copy. Predictions are approximate — guarded
    /// by the accuracy-delta tests, not by the bitwise-identity claim.
    pub fn quantize(&self) -> FrozenModel {
        let emissions = match &self.emissions {
            EmissionTable::Q8 { .. } => self.emissions.clone(),
            EmissionTable::F32(w) => {
                let nblocks = w.len().div_ceil(QBLOCK);
                let mut q = vec![0u8; w.len()];
                let mut min = Vec::with_capacity(nblocks);
                let mut scale = Vec::with_capacity(nblocks);
                for (bi, chunk) in w.chunks(QBLOCK).enumerate() {
                    let lo = chunk.iter().copied().fold(f32::INFINITY, f32::min);
                    let hi = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let s = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
                    min.push(lo);
                    scale.push(s);
                    if s > 0.0 {
                        for (j, &v) in chunk.iter().enumerate() {
                            q[bi * QBLOCK + j] = ((v - lo) / s).round().clamp(0.0, 255.0) as u8;
                        }
                    }
                }
                EmissionTable::Q8 { q, min, scale }
            }
        };
        fieldswap_obs::counter_add("fieldswap_infer_quantize_total", 1);
        Self::build(
            self.tags.clone(),
            self.field_types.clone(),
            emissions,
            self.trans_raw.clone(),
            self.lexicon.clone(),
        )
    }

    /// Whether the emission table is int8-quantized.
    pub fn is_quantized(&self) -> bool {
        self.emissions.is_quantized()
    }

    /// The tag set in use.
    pub fn tag_set(&self) -> &TagSet {
        &self.tags
    }

    /// Number of schema fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    pub(crate) fn serial_parts(&self) -> (&[BaseType], &EmissionTable, &[f32], &Lexicon) {
        (
            &self.field_types,
            &self.emissions,
            &self.trans_raw,
            &self.lexicon,
        )
    }

    /// The DF lexicon the model was trained with (used by the serving
    /// layer for template-match routing).
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Extracts entity spans from `doc` with the frozen fast path,
    /// applying the same single-instance schema constraint as
    /// [`Extractor::predict`]. All working memory lives in `scratch`; a
    /// warm scratch allocates only the returned span vector.
    pub fn predict(&self, doc: &Document, scratch: &mut InferScratch) -> Vec<EntitySpan> {
        self.predict_scored(doc, scratch)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// [`FrozenModel::predict`], but each retained span is paired with
    /// its mean-emission score — the margin the single-instance schema
    /// constraint already computes to pick the best span per field, and
    /// the confidence the serving layer reports. The spans themselves
    /// are exactly what `predict` returns (same arithmetic, same
    /// ordering); only the scores ride along.
    pub fn predict_scored(
        &self,
        doc: &Document,
        scratch: &mut InferScratch,
    ) -> Vec<(EntitySpan, f32)> {
        let InferScratch {
            feats,
            fscratch,
            cache,
            row_idx,
            bs_s,
            bs_off,
            bs_pc,
            e,
            score,
            next,
            best_bs,
            bp_bs,
            best_ie,
            bp_ie,
            back,
            tags_buf,
            model_token,
        } = scratch;
        if *model_token != self.token {
            cache.reset(self.stride);
            *model_token = self.token;
        }
        extract_into(doc, &self.lexicon, fscratch, feats);
        let n = feats.n_tokens();
        if n == 0 {
            return Vec::new();
        }
        let nt = self.n_tags;
        let stride = self.stride;

        // Emission matrix: per token, sum the interned rows of its
        // features with one register-resident sweep (same per-lane add
        // order as the trainer's gather-and-sum), then mask gate-blocked
        // columns. `emit_sum` overwrites each row, so `e` only ever
        // grows — no per-document zeroing.
        if e.len() < n * stride {
            e.resize(n * stride, 0.0);
        }
        for t in 0..n {
            row_idx.clear();
            for &fid in feats.row(t) {
                let (idx, inserted) = cache.get_or_insert(fid);
                if inserted {
                    let row = &mut cache.rows[idx as usize * stride..][..stride];
                    for (col, slot) in row.iter_mut().enumerate().take(nt) {
                        *slot = self.emissions.weight(bucket(fid, self.inv[col]));
                    }
                }
                row_idx.push(idx);
            }
            let erow = &mut e[t * stride..(t + 1) * stride];
            emit_sum(erow, &cache.rows, stride, row_idx);
            let adm = &self.gate_cols[feats.gate(t) as usize * nt..][..nt];
            for (v, &a) in erow.iter_mut().zip(adm) {
                // Branchless select keeps this loop vectorizable.
                *v = if a == 0 { NEG } else { *v };
            }
        }

        // Viterbi over the permuted layout. Predecessors are visited in
        // ascending original tag id — the reference tie-break order.
        score.clear();
        score.resize(nt, NEG);
        next.clear();
        next.resize(nt, NEG);
        best_bs.clear();
        best_bs.resize(self.n_bs_pad, NEG);
        bp_bs.clear();
        bp_bs.resize(self.n_bs_pad, 0);
        best_ie.clear();
        best_ie.resize(nt, NEG);
        bp_ie.clear();
        bp_ie.resize(nt, 0);
        // `back` rows for t >= 1 are fully overwritten each step and row
        // 0 is never read, so the matrix only ever grows.
        if back.len() < n * nt {
            back.resize(n * nt, 0);
        }
        // Start: exactly the [O | B_* | S_*] block may begin a sequence.
        score[..self.n_bs].copy_from_slice(&e[..self.n_bs]);

        for t in 1..n {
            // Only the inside block's I/E columns are ever written.
            best_ie[self.n_bs..nt].fill(NEG);
            bp_ie[self.n_bs..nt].fill(0);
            bs_s.clear();
            bs_off.clear();
            bs_pc.clear();
            // Predecessor lists are precomputed in ascending original tag
            // order (the reference tie-break order); unreachable prevs
            // (score at the `NEG` floor) are skipped exactly as the
            // reference does.
            for (&off, &pc) in self.bnd_offs.iter().zip(&self.bnd_pcs) {
                let s = score[pc as usize];
                if s > NEG {
                    bs_s.push(s);
                    bs_off.push(off);
                    bs_pc.push(pc);
                }
            }
            for ip in &self.ins_prevs {
                let s = score[ip.pc as usize];
                if s <= NEG {
                    continue;
                }
                let cand = s + ip.ti;
                if cand > best_ie[ip.ci as usize] {
                    best_ie[ip.ci as usize] = cand;
                    bp_ie[ip.ci as usize] = ip.pc;
                }
                let cand = s + ip.te;
                if cand > best_ie[ip.ce as usize] {
                    best_ie[ip.ce as usize] = cand;
                    bp_ie[ip.ce as usize] = ip.pc;
                }
            }
            // Boundary and inside predecessors write disjoint column
            // sets, so hoisting the boundary group into one fused sweep
            // keeps each group's ascending-order tie-break intact.
            bs_sweep(best_bs, bp_bs, &self.trans_bs, bs_off, bs_s, bs_pc);
            let erow = &e[t * stride..t * stride + nt];
            let backrow = &mut back[t * nt..(t + 1) * nt];
            // Branchless combine (reference semantics: a gate-blocked
            // emission or unreachable column propagates NEG and leaves
            // the backpointer at column 0 = `O`).
            for c in 0..self.n_bs {
                let ev = erow[c];
                let dead = ev <= NEG || best_bs[c] <= NEG;
                next[c] = if dead { NEG } else { best_bs[c] + ev };
                backrow[c] = if dead { 0 } else { bp_bs[c] as u16 };
            }
            for c in self.n_bs..nt {
                let ev = erow[c];
                let dead = ev <= NEG || best_ie[c] <= NEG;
                next[c] = if dead { NEG } else { best_ie[c] + ev };
                backrow[c] = if dead { 0 } else { bp_ie[c] as u16 };
            }
            std::mem::swap(score, next);
        }

        // Best legal final tag, scanned in ascending original id.
        let mut best_tag = 0u16;
        let mut best_sc = NEG;
        for orig in 0..nt as u16 {
            if self.tags.can_end(orig) {
                let sv = score[self.perm[orig as usize] as usize];
                if sv > best_sc {
                    best_sc = sv;
                    best_tag = orig;
                }
            }
        }
        tags_buf.clear();
        tags_buf.resize(n, 0);
        tags_buf[n - 1] = best_tag;
        let mut cur_col = self.perm[best_tag as usize] as usize;
        for t in (1..n).rev() {
            cur_col = back[t * nt + cur_col] as usize;
            tags_buf[t - 1] = self.inv[cur_col];
        }

        let spans = self.tags.decode(tags_buf);
        self.apply_schema_constraints(e, spans)
    }

    /// The single-instance schema constraint, scored from the emission
    /// matrix — same mean-emission margin and keep-first tie rule as the
    /// training-path implementation. Returns each kept span with its
    /// winning mean-emission score.
    fn apply_schema_constraints(
        &self,
        e: &[f32],
        spans: Vec<EntitySpan>,
    ) -> Vec<(EntitySpan, f32)> {
        let mut best: Vec<Option<(f32, EntitySpan)>> = vec![None; self.n_fields];
        for s in spans {
            let mut score = 0.0f32;
            for t in s.start..s.end {
                let part = match (t == s.start, t + 1 == s.end) {
                    (true, true) => 3,  // S
                    (true, false) => 0, // B
                    (false, true) => 2, // E
                    (false, false) => 1,
                };
                let tag = self.tags.tag(s.field, part);
                score += e[t as usize * self.stride + self.perm[tag as usize] as usize];
            }
            score /= (s.end - s.start) as f32;
            let slot = &mut best[s.field as usize];
            match slot {
                Some((b, _)) if *b >= score => {}
                _ => *slot = Some((score, s)),
            }
        }
        let mut out: Vec<(EntitySpan, f32)> =
            best.into_iter().flatten().map(|(sc, s)| (s, sc)).collect();
        out.sort_by_key(|(s, _)| (s.start, s.end));
        out
    }
}

/// Sums the interned emission rows `idxs` (each `stride` wide, packed in
/// `rows`) into `erow`, overwriting it. Per lane this is the exact f32
/// add sequence of the reference gather-and-sum — start from 0.0, add
/// each feature's weight in feature order — so the result is
/// bit-identical on every dispatch path. The wide variants keep the
/// accumulator group in registers across all rows and store once.
#[inline]
fn emit_sum(erow: &mut [f32], rows: &[f32], stride: usize, idxs: &[u32]) {
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        // SAFETY: dispatch is gated on runtime feature detection.
        3 => return unsafe { emit_sum_avx512(erow, rows, stride, idxs) },
        2 => return unsafe { emit_sum_avx2(erow, rows, stride, idxs) },
        _ => {}
    }
    emit_sum_scalar(erow, rows, stride, idxs);
}

#[inline]
fn emit_sum_scalar(erow: &mut [f32], rows: &[f32], stride: usize, idxs: &[u32]) {
    erow.fill(0.0);
    for &ix in idxs {
        let row = &rows[ix as usize * stride..][..stride];
        for (a, &r) in erow.iter_mut().zip(row) {
            *a += r;
        }
    }
}

/// The boundary Viterbi sweep: for every column of the `[O | B_* | S_*]`
/// block, the max over boundary predecessors `j` of
/// `ss[j] + trans[offs[j] + col]`, with `bp` recording the winning
/// predecessor's column id `pcs[j]`. Predecessors arrive in ascending
/// original tag order and are compared with strict `>`, so the earliest
/// wins ties — the reference order. Overwrites `best`/`bp`; columns no
/// predecessor reaches get `NEG`/0.
#[inline]
fn bs_sweep(
    best: &mut [f32],
    bp: &mut [u32],
    trans: &[f32],
    offs: &[u32],
    ss: &[f32],
    pcs: &[u32],
) {
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        // SAFETY: dispatch is gated on runtime feature detection.
        3 => return unsafe { bs_sweep_avx512(best, bp, trans, offs, ss, pcs) },
        2 => return unsafe { bs_sweep_avx2(best, bp, trans, offs, ss, pcs) },
        _ => {}
    }
    bs_sweep_scalar(best, bp, trans, offs, ss, pcs);
}

#[inline]
fn bs_sweep_scalar(
    best: &mut [f32],
    bp: &mut [u32],
    trans: &[f32],
    offs: &[u32],
    ss: &[f32],
    pcs: &[u32],
) {
    let w = best.len().min(bp.len());
    best[..w].fill(NEG);
    bp[..w].fill(0);
    for j in 0..ss.len().min(offs.len()).min(pcs.len()) {
        let s = ss[j];
        let p = pcs[j];
        let row = &trans[offs[j] as usize..][..w];
        for i in 0..w {
            let cand = s + row[i];
            if cand > best[i] {
                best[i] = cand;
                bp[i] = p;
            }
        }
    }
}

/// Runtime SIMD dispatch level, detected once: 1 = baseline (the default
/// x86-64 target only assumes SSE2), 2 = AVX2 (8-lane), 3 = AVX-512F
/// (16-lane). The explicit wide variants below exist because the hot
/// kernels are the decode bottleneck and the baseline autovectorization
/// is stuck at 4 lanes.
#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_level() -> u8 {
    use std::sync::atomic::AtomicU8;
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let lvl = if std::arch::is_x86_feature_detected!("avx512f") {
                3
            } else if std::arch::is_x86_feature_detected!("avx2") {
                2
            } else {
                1
            };
            STATE.store(lvl, Ordering::Relaxed);
            lvl
        }
        lvl => lvl,
    }
}

/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn emit_sum_avx2(erow: &mut [f32], rows: &[f32], stride: usize, idxs: &[u32]) {
    use core::arch::x86_64::*;
    let n = erow.len().min(stride);
    let mut g = 0;
    while g + 8 <= n {
        let mut acc = _mm256_setzero_ps();
        for &ix in idxs {
            // Adds stay in feature order per lane — never reassociated.
            acc = _mm256_add_ps(
                acc,
                _mm256_loadu_ps(rows.as_ptr().add(ix as usize * stride + g)),
            );
        }
        _mm256_storeu_ps(erow.as_mut_ptr().add(g), acc);
        g += 8;
    }
    while g < n {
        let mut acc = 0.0f32;
        for &ix in idxs {
            acc += *rows.get_unchecked(ix as usize * stride + g);
        }
        *erow.get_unchecked_mut(g) = acc;
        g += 1;
    }
}

/// # Safety
/// Caller must ensure AVX-512F is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn emit_sum_avx512(erow: &mut [f32], rows: &[f32], stride: usize, idxs: &[u32]) {
    use core::arch::x86_64::*;
    let n = erow.len().min(stride);
    let mut g = 0;
    while g + 16 <= n {
        let mut acc = _mm512_setzero_ps();
        for &ix in idxs {
            // Adds stay in feature order per lane — never reassociated.
            acc = _mm512_add_ps(
                acc,
                _mm512_loadu_ps(rows.as_ptr().add(ix as usize * stride + g)),
            );
        }
        _mm512_storeu_ps(erow.as_mut_ptr().add(g), acc);
        g += 16;
    }
    while g < n {
        let mut acc = 0.0f32;
        for &ix in idxs {
            acc += *rows.get_unchecked(ix as usize * stride + g);
        }
        *erow.get_unchecked_mut(g) = acc;
        g += 1;
    }
}

/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bs_sweep_avx2(
    best: &mut [f32],
    bp: &mut [u32],
    trans: &[f32],
    offs: &[u32],
    ss: &[f32],
    pcs: &[u32],
) {
    use core::arch::x86_64::*;
    let w = best.len().min(bp.len());
    let m = ss.len().min(offs.len()).min(pcs.len());
    let mut g = 0;
    while g + 8 <= w {
        let mut acc = _mm256_set1_ps(NEG);
        let mut win = _mm256_setzero_si256();
        for j in 0..m {
            let cand = _mm256_add_ps(
                _mm256_set1_ps(*ss.get_unchecked(j)),
                _mm256_loadu_ps(trans.as_ptr().add(*offs.get_unchecked(j) as usize + g)),
            );
            // Ordered, non-signaling GT: identical to the scalar `>` for
            // the finite operands this kernel ever sees.
            let k = _mm256_cmp_ps::<_CMP_GT_OQ>(cand, acc);
            acc = _mm256_blendv_ps(acc, cand, k);
            win = _mm256_blendv_epi8(
                win,
                _mm256_set1_epi32(*pcs.get_unchecked(j) as i32),
                _mm256_castps_si256(k),
            );
        }
        _mm256_storeu_ps(best.as_mut_ptr().add(g), acc);
        _mm256_storeu_si256(bp.as_mut_ptr().add(g) as *mut __m256i, win);
        g += 8;
    }
    while g < w {
        let mut acc = NEG;
        let mut win = 0u32;
        for j in 0..m {
            let cand =
                *ss.get_unchecked(j) + *trans.get_unchecked(*offs.get_unchecked(j) as usize + g);
            if cand > acc {
                acc = cand;
                win = *pcs.get_unchecked(j);
            }
        }
        *best.get_unchecked_mut(g) = acc;
        *bp.get_unchecked_mut(g) = win;
        g += 1;
    }
}

/// # Safety
/// Caller must ensure AVX-512F is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn bs_sweep_avx512(
    best: &mut [f32],
    bp: &mut [u32],
    trans: &[f32],
    offs: &[u32],
    ss: &[f32],
    pcs: &[u32],
) {
    use core::arch::x86_64::*;
    let w = best.len().min(bp.len());
    let m = ss.len().min(offs.len()).min(pcs.len());
    let mut g = 0;
    while g + 16 <= w {
        let mut acc = _mm512_set1_ps(NEG);
        let mut win = _mm512_setzero_si512();
        for j in 0..m {
            let cand = _mm512_add_ps(
                _mm512_set1_ps(*ss.get_unchecked(j)),
                _mm512_loadu_ps(trans.as_ptr().add(*offs.get_unchecked(j) as usize + g)),
            );
            // Ordered, non-signaling GT: identical to the scalar `>` for
            // the finite operands this kernel ever sees.
            let k = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(cand, acc);
            acc = _mm512_mask_blend_ps(k, acc, cand);
            win = _mm512_mask_blend_epi32(k, win, _mm512_set1_epi32(*pcs.get_unchecked(j) as i32));
        }
        _mm512_storeu_ps(best.as_mut_ptr().add(g), acc);
        _mm512_storeu_si512(bp.as_mut_ptr().add(g) as *mut __m512i, win);
        g += 16;
    }
    while g < w {
        let mut acc = NEG;
        let mut win = 0u32;
        for j in 0..m {
            let cand =
                *ss.get_unchecked(j) + *trans.get_unchecked(*offs.get_unchecked(j) as usize + g);
            if cand > acc {
                acc = cand;
                win = *pcs.get_unchecked(j);
            }
        }
        *best.get_unchecked_mut(g) = acc;
        *bp.get_unchecked_mut(g) = win;
        g += 1;
    }
}

// `WEIGHT_DIM` is re-exported for the quantization metadata sizing in
// `serialize`; keep the import used even when tests are compiled out.
const _: () = assert!(WEIGHT_DIM.is_multiple_of(QBLOCK));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PredictScratch, TrainConfig};
    use crate::serialize::ModelParts;
    use fieldswap_datagen::{generate, Domain};
    use fieldswap_docmodel::{BBox, Corpus, DocumentBuilder, Token};

    fn train_small(domain: Domain, seed: u64, n: usize) -> (Extractor, Corpus) {
        let pool = generate(domain, seed, n + 20);
        let train = Corpus::new(pool.schema.clone(), pool.documents[..n].to_vec());
        let test = Corpus::new(pool.schema.clone(), pool.documents[n..].to_vec());
        let lex = Lexicon::pretrain(&pool.documents);
        let ex = Extractor::train_on(&train.schema, lex, &train, &[], &TrainConfig::tiny());
        (ex, test)
    }

    #[test]
    fn predict_scored_spans_match_predict() {
        // The scored variant must be the same decode with scores riding
        // along: identical spans, identical order, finite scores.
        let (ex, test) = train_small(Domain::Earnings, 47, 20);
        let frozen = ex.freeze();
        let mut s1 = InferScratch::default();
        let mut s2 = InferScratch::default();
        for d in &test.documents {
            let plain = frozen.predict(d, &mut s1);
            let scored = frozen.predict_scored(d, &mut s2);
            let spans: Vec<EntitySpan> = scored.iter().map(|(s, _)| *s).collect();
            assert_eq!(plain, spans, "scored decode drift on {}", d.id);
            for (s, sc) in &scored {
                assert!(sc.is_finite(), "non-finite confidence on {} {s:?}", d.id);
            }
        }
    }

    #[test]
    fn frozen_matches_predict_with_on_trained_model() {
        for domain in [Domain::Earnings, Domain::Invoices] {
            let (ex, test) = train_small(domain, 41, 25);
            let frozen = ex.freeze();
            let mut ps = PredictScratch::default();
            let mut is = InferScratch::default();
            for d in &test.documents {
                assert_eq!(
                    frozen.predict(d, &mut is),
                    ex.predict_with(d, &mut ps),
                    "frozen drift on {domain:?} doc {}",
                    d.id
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs_match_reference() {
        let (ex, _) = train_small(Domain::Fara, 43, 10);
        let frozen = ex.freeze();
        let mut is = InferScratch::default();

        // Empty document.
        let empty = Document {
            id: "empty".into(),
            ..Default::default()
        };
        assert_eq!(frozen.predict(&empty, &mut is), Vec::new());
        assert_eq!(frozen.predict(&empty, &mut is), ex.predict(&empty));

        // Single-token documents, including unknown-vocabulary tokens.
        for text in ["Registrant", "zzzqqqxxx", "$17.50", "...", "垂直"] {
            let mut b = DocumentBuilder::new("one");
            b.push_token(Token::new(text, BBox::new(10.0, 10.0, 80.0, 22.0)));
            let mut d = b.build();
            fieldswap_ocr::detect_lines(&mut d);
            assert_eq!(
                frozen.predict(&d, &mut is),
                ex.predict(&d),
                "token {text:?}"
            );
        }

        // A document made entirely of unknown features (empty lexicon,
        // garbage vocabulary) still decodes identically.
        let mut b = DocumentBuilder::new("junk");
        for (i, w) in ["qqq", "%%%", "##", "zz9z", "!!"].iter().enumerate() {
            let x = 12.0 * i as f32;
            b.push_token(Token::new(*w, BBox::new(x, 0.0, x + 10.0, 10.0)));
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        assert_eq!(frozen.predict(&d, &mut is), ex.predict(&d));
    }

    #[test]
    fn scratch_survives_model_switch() {
        // One scratch used across two different models must rebuild its
        // row cache, not serve stale rows.
        let (a, test_a) = train_small(Domain::Earnings, 47, 15);
        let (b, test_b) = train_small(Domain::Fara, 48, 15);
        let fa = a.freeze();
        let fb = b.freeze();
        let mut shared = InferScratch::default();
        for d in test_a.documents.iter().take(5) {
            assert_eq!(fa.predict(d, &mut shared), a.predict(d));
        }
        for d in test_b.documents.iter().take(5) {
            assert_eq!(fb.predict(d, &mut shared), b.predict(d));
        }
        for d in test_a.documents.iter().take(5) {
            assert_eq!(fa.predict(d, &mut shared), a.predict(d));
        }
    }

    #[test]
    fn quantized_model_stays_close_and_valid() {
        let (ex, test) = train_small(Domain::Earnings, 49, 30);
        let q = ex.freeze().quantize();
        assert!(q.is_quantized());
        assert!(!ex.freeze().is_quantized());
        let mut is = InferScratch::default();
        let mut ps = PredictScratch::default();
        let mut agree = 0usize;
        let mut total = 0usize;
        for d in &test.documents {
            let qp = q.predict(d, &mut is);
            for s in &qp {
                assert!(s.end <= d.tokens.len() as u32);
                assert!((s.field as usize) < q.n_fields());
            }
            let fp = ex.predict_with(d, &mut ps);
            total += fp.len().max(qp.len());
            agree += qp.iter().filter(|s| fp.contains(s)).count();
        }
        // int8 emissions are approximate, but on a trained model the
        // margins dwarf the quantization noise: predictions should agree
        // on the overwhelming majority of spans. (The macro-F1 epsilon
        // guard lives in the eval crate where the metric is defined.)
        assert!(
            agree * 10 >= total * 8,
            "quantized agreement too low: {agree}/{total}"
        );
    }

    #[test]
    fn quantize_is_idempotent() {
        let (ex, test) = train_small(Domain::Fara, 51, 10);
        let q1 = ex.freeze().quantize();
        let q2 = q1.quantize();
        let mut s1 = InferScratch::default();
        let mut s2 = InferScratch::default();
        for d in &test.documents {
            assert_eq!(q1.predict(d, &mut s1), q2.predict(d, &mut s2));
        }
    }

    #[test]
    fn kernels_match_scalar_reference() {
        // The dispatching kernels must equal their scalar counterparts
        // bit for bit on this machine, whatever path dispatch picks —
        // lengths straddling the 8- and 16-lane boundaries included.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32).mul_add(8.0, -4.0)
        };
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 47, 48, 93, 96] {
            for n_rows in [0usize, 1, 2, 5, 11, 40] {
                // emit_sum over `n_rows` interned rows of width `n`,
                // gathered in a shuffled, repeating index pattern.
                let stride = n;
                let pool = 7usize.min(n_rows.max(1));
                let rows: Vec<f32> = (0..pool * stride).map(|_| rnd()).collect();
                let idxs: Vec<u32> = (0..n_rows).map(|j| ((j * 5 + 2) % pool) as u32).collect();
                let mut out_a = vec![f32::NAN; n];
                let mut out_b = vec![f32::NAN; n];
                emit_sum(&mut out_a, &rows, stride, &idxs);
                emit_sum_scalar(&mut out_b, &rows, stride, &idxs);
                assert_eq!(out_a, out_b, "emit_sum n={n} rows={n_rows}");

                // bs_sweep over the same predecessor count, with rows at
                // staggered offsets into one shared transition buffer.
                let trans: Vec<f32> = (0..n_rows * stride.max(1) + n).map(|_| rnd()).collect();
                let offs: Vec<u32> = (0..n_rows)
                    .map(|j| (j * stride.max(1) / 2) as u32)
                    .collect();
                let ss: Vec<f32> = (0..n_rows).map(|_| rnd()).collect();
                let pcs: Vec<u32> = (0..n_rows).map(|j| (j * 3 + 1) as u32).collect();
                let mut best_a = vec![f32::NAN; n];
                let mut bp_a = vec![u32::MAX; n];
                let mut best_b = vec![f32::NAN; n];
                let mut bp_b = vec![u32::MAX; n];
                bs_sweep(&mut best_a, &mut bp_a, &trans, &offs, &ss, &pcs);
                bs_sweep_scalar(&mut best_b, &mut bp_b, &trans, &offs, &ss, &pcs);
                assert_eq!(best_a, best_b, "bs_sweep best n={n} rows={n_rows}");
                assert_eq!(bp_a, bp_b, "bs_sweep bp n={n} rows={n_rows}");
            }
        }
    }

    /// Builds a random-but-deterministic document from (word index, grid
    /// x, grid y) triples, with real line detection — so the proptest
    /// exercises the full feature extractor, gates included.
    fn doc_from_spec(spec: &[(u8, u8, u8)]) -> Document {
        const WORDS: &[&str] = &[
            "Total",
            "Amount",
            "Due",
            "$1,234.56",
            "$9.99",
            "01/02/2024",
            "42",
            "Invoice",
            "Date",
            "Gross",
            "Pay",
            "alpha",
            "beta-9",
            "...",
            "x",
            "Overtime",
        ];
        let mut b = DocumentBuilder::new("p");
        for &(w, gx, gy) in spec {
            let text = WORDS[w as usize % WORDS.len()];
            let x = f32::from(gx % 24) * 34.0;
            let y = f32::from(gy % 30) * 16.0;
            b.push_token(Token::new(
                text,
                BBox::new(x, y, x + 8.0 * text.len() as f32, y + 11.0),
            ));
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    #[test]
    fn proptest_frozen_bitwise_identical_to_predict_with() {
        // The headline guarantee: across random models (weights,
        // transitions) and random documents, the frozen f32 path decodes
        // to exactly the same spans as `predict_with` — including with a
        // single warm scratch reused across every case.
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let schema = generate(Domain::Earnings, 1, 1).schema;
        let lexicon = {
            let corpus = generate(Domain::Earnings, 2, 40);
            Lexicon::pretrain(&corpus.documents)
        };
        let mut is = InferScratch::default();
        let mut runner = TestRunner::new(Config::with_cases(24));
        runner
            .run(
                &(
                    proptest::collection::vec(
                        proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..24),
                        2,
                    ),
                    proptest::collection::vec(-2.0f32..2.0, 64),
                    proptest::collection::vec(-1.0f32..1.0, 32),
                ),
                |(docs, wvals, tvals)| {
                    let n_tags = 1 + 4 * schema.len();
                    let parts = ModelParts {
                        n_fields: schema.len(),
                        field_types: schema
                            .iter()
                            .map(|(_, f)| {
                                fieldswap_docmodel::BaseType::ALL
                                    .iter()
                                    .position(|x| *x == f.base_type)
                                    .unwrap() as u8
                            })
                            .collect(),
                        weights: (0..WEIGHT_DIM).map(|i| wvals[i % wvals.len()]).collect(),
                        transitions: (0..n_tags * n_tags)
                            .map(|i| tvals[i % tvals.len()])
                            .collect(),
                        lexicon_docs: lexicon.n_docs(),
                        lexicon_entries: lexicon.entries(),
                    };
                    let ex = Extractor::from_parts(parts);
                    let frozen = ex.freeze();
                    let mut ps = PredictScratch::default();
                    for spec in &docs {
                        let d = doc_from_spec(spec);
                        prop_assert_eq!(frozen.predict(&d, &mut is), ex.predict_with(&d, &mut ps));
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
