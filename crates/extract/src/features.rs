//! Per-token feature extraction for the sequence labeler.
//!
//! Features are hashed into `u64` ids; the model maps `(feature, tag)`
//! pairs into its weight table. The extractor pre-computes document-level
//! structure (line membership, left-neighbor chains, vertical alignment)
//! once, then emits each token's features.
//!
//! Hashing is incremental: [`FeatHash`] streams bytes through FNV-1a, so
//! composite features (`"g{gx}-{gy}"`, joined left phrases, …) are hashed
//! without materializing an intermediate `String`. The streamed bytes are
//! exactly the bytes the formatted strings would contain, so feature ids —
//! and therefore trained model weights — are unchanged.

use crate::lexicon::Lexicon;
use fieldswap_docmodel::{BaseType, Document};
use fieldswap_ocr::candidate_matches_type;

/// Bitmask of base types a token could plausibly belong to. Used to gate
/// the tag space per token: a word is never a money amount.
#[inline]
pub fn type_gate(text: &str) -> u8 {
    let mut mask = 0u8;
    // Address and String fields mix arbitrary tokens; always allowed.
    mask |= 1 << BaseType::Address as u8;
    mask |= 1 << BaseType::String as u8;
    let numeric_ish = text.chars().any(|c| c.is_ascii_digit());
    if candidate_matches_type(text, BaseType::Money) {
        mask |= 1 << BaseType::Money as u8;
    }
    if candidate_matches_type(text, BaseType::Date) || numeric_ish {
        mask |= 1 << BaseType::Date as u8;
    }
    if numeric_ish {
        mask |= 1 << BaseType::Number as u8;
        // Bare numbers also appear inside money columns without symbols.
        mask |= 1 << BaseType::Money as u8;
    }
    mask
}

/// Whether the gate `mask` admits `ty`.
#[inline]
pub fn gate_allows(mask: u8, ty: BaseType) -> bool {
    mask & (1 << ty as u8) != 0
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
// NOTE: this prime is what the original implementation shipped with — it
// drops two hex zeros from the canonical 64-bit FNV prime 0x100_0000_01B3.
// It is pinned deliberately: every trained model's weight-table addresses
// depend on it, and the mixer in `bucket()` restores avalanche quality, so
// correcting it would invalidate artifacts for no measurable gain.
const FNV_PRIME: u64 = 0x1_0000_01B3;

/// Buffered FNV-1a over a byte slice — the oracle the incremental
/// [`FeatHash`] is tested against.
#[cfg(test)]
#[inline]
fn fnv1a(s: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a feature hasher. `FeatHash::new(kind).str(p).id()`
/// hashes the same byte stream as hashing `[kind] ++ p.as_bytes()` at
/// once, so it is a drop-in, allocation-free replacement for building the
/// payload in a buffer first.
#[derive(Clone, Copy)]
struct FeatHash(u64);

impl FeatHash {
    #[inline]
    fn new(kind: u8) -> Self {
        let mut h = FNV_OFFSET;
        h ^= u64::from(kind);
        h = h.wrapping_mul(FNV_PRIME);
        FeatHash(h)
    }

    #[inline]
    fn bytes(mut self, s: &[u8]) -> Self {
        for b in s {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    #[inline]
    fn str(self, s: &str) -> Self {
        self.bytes(s.as_bytes())
    }

    /// Streams the decimal digits of `v` — the bytes `format!("{v}")`
    /// would produce.
    #[inline]
    fn dec(self, v: usize) -> Self {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.bytes(&buf[i..])
    }

    #[inline]
    fn id(self) -> u64 {
        self.0
    }
}

fn norm(text: &str) -> String {
    text.trim_matches(|c: char| c.is_ascii_punctuation())
        .to_lowercase()
}

/// Collapsed character-shape string (`"Abc-12"` → `"Xx-9"`), written into
/// `out` (cleared first) to avoid a per-token allocation.
fn shape_into(text: &str, out: &mut String) {
    out.clear();
    let mut last = '\0';
    for c in text.chars() {
        let s = if c.is_ascii_uppercase() {
            'X'
        } else if c.is_ascii_lowercase() {
            'x'
        } else if c.is_ascii_digit() {
            '9'
        } else {
            c
        };
        if s != last {
            out.push(s);
            last = s;
        }
    }
}

/// Pre-computed document structure + per-token feature lists.
pub struct DocFeatures {
    /// `features[t]` — hashed feature ids for token `t`.
    pub features: Vec<Vec<u64>>,
    /// `gates[t]` — base-type bitmask for token `t`.
    pub gates: Vec<u8>,
}

/// Extracts features for every token of `doc`.
pub fn extract(doc: &Document, lexicon: &Lexicon) -> DocFeatures {
    let n = doc.tokens.len();
    // line_of[t] and position within line.
    let mut line_of = vec![usize::MAX; n];
    let mut pos_in_line = vec![0usize; n];
    for (li, line) in doc.lines.iter().enumerate() {
        for (pi, &t) in line.tokens.iter().enumerate() {
            line_of[t as usize] = li;
            pos_in_line[t as usize] = pi;
        }
    }
    // Nearest token vertically above each token (same column band).
    let above = compute_above(doc);
    // Normalized token texts, computed once: the raw loop re-normalizes
    // each token every time it appears as someone's neighbor (~6-8x).
    let normed: Vec<String> = doc.tokens.iter().map(|t| norm(&t.text)).collect();

    let mut features = Vec::with_capacity(n);
    let mut gates = Vec::with_capacity(n);
    let mut shape_buf = String::new();
    for t in 0..n {
        let tok = &doc.tokens[t];
        let text = tok.text.as_str();
        let lower = normed[t].as_str();
        let mut fs: Vec<u64> = Vec::with_capacity(28);
        fs.push(FeatHash::new(0).str("bias").id());
        fs.push(FeatHash::new(1).str(lower).id());
        shape_into(text, &mut shape_buf);
        fs.push(FeatHash::new(2).str(&shape_buf).id());
        // Affixes.
        if lower.len() >= 3 {
            fs.push(FeatHash::new(3).str(&lower[..3]).id());
            fs.push(FeatHash::new(4).str(&lower[lower.len() - 3..]).id());
        }
        // Value-type flags.
        let gate = type_gate(text);
        fs.push(FeatHash::new(5).str("gate").dec(gate as usize).id());
        // DF bucket from unsupervised pre-training.
        fs.push(
            FeatHash::new(6)
                .str("df")
                .dec(lexicon.df_bucket(text) as usize)
                .id(),
        );

        // Same-line left context: the 3 nearest tokens to the left, plus
        // their joined text (the key-phrase anchor for kv rows).
        if line_of[t] != usize::MAX {
            let line = &doc.lines[line_of[t]];
            let p = pos_in_line[t];
            let mut left_words: Vec<&str> = Vec::new();
            for k in 1..=3usize {
                if p >= k {
                    let lt = line.tokens[p - k] as usize;
                    let w = normed[lt].as_str();
                    fs.push(FeatHash::new(7 + k as u8).str(w).id());
                    left_words.push(w);
                }
            }
            if !left_words.is_empty() {
                left_words.reverse();
                // Joined phrase, streamed word by word (== join(" ")).
                let mut h11 = FeatHash::new(11);
                let mut h12 = FeatHash::new(12);
                for (i, w) in left_words.iter().enumerate() {
                    if i > 0 {
                        h11 = h11.str(" ");
                        h12 = h12.str(" ");
                    }
                    h11 = h11.str(w);
                    h12 = h12.str(w);
                }
                fs.push(h11.id());
                // Conjunction with the left phrase's DF bucket: phrase-like
                // left context is a strong anchor.
                let df = lexicon.df_bucket(left_words[left_words.len() - 1]);
                fs.push(h12.str("|df").dec(df as usize).id());
            }
            // Right neighbor on the line (values left of their labels in
            // some layouts).
            if p + 1 < line.tokens.len() {
                let rt = line.tokens[p + 1] as usize;
                fs.push(FeatHash::new(13).str(&normed[rt]).id());
            }
            // First token of the line (the row label in tables).
            let first = line.tokens[0] as usize;
            if first != t {
                fs.push(FeatHash::new(14).str(&normed[first]).id());
                // Row label + column bucket: the feature that reads a
                // table cell as (row phrase, column).
                let col = (tok.bbox.center().x / 125.0) as usize;
                fs.push(
                    FeatHash::new(15)
                        .str(&normed[first])
                        .str("|c")
                        .dec(col)
                        .id(),
                );
                // Row label bigram (e.g. "base salary").
                if line.tokens.len() > 1 && line.tokens[1] as usize != t {
                    let second = &normed[line.tokens[1] as usize];
                    fs.push(
                        FeatHash::new(22)
                            .str(&normed[first])
                            .str(" ")
                            .str(second)
                            .id(),
                    );
                }
            }
            // Line length bucket.
            fs.push(
                FeatHash::new(16)
                    .str("ll")
                    .dec(line.tokens.len().min(8))
                    .id(),
            );
        }

        // Vertically-above context (stacked label/value layouts and table
        // column headers).
        if let Some(a) = above[t] {
            fs.push(FeatHash::new(17).str(&normed[a as usize]).id());
            // Above + its left neighbor (two-word stacked labels).
            if line_of[a as usize] != usize::MAX {
                let aline = &doc.lines[line_of[a as usize]];
                let ap = pos_in_line[a as usize];
                if ap >= 1 {
                    let prev = &normed[aline.tokens[ap - 1] as usize];
                    fs.push(
                        FeatHash::new(18)
                            .str(prev)
                            .str(" ")
                            .str(&normed[a as usize])
                            .id(),
                    );
                }
            }
        }

        // Absolute layout: page-grid cell and line index bucket — the
        // memorization-prone features FieldSwap regularizes.
        let c = tok.bbox.center();
        let gx = (c.x / 125.0) as usize;
        let gy = (c.y / 100.0) as usize;
        fs.push(FeatHash::new(19).str("g").dec(gx).str("-").dec(gy).id());
        if line_of[t] != usize::MAX {
            fs.push(FeatHash::new(20).str("li").dec(line_of[t].min(30)).id());
        }
        fs.push(FeatHash::new(21).str("x").dec(gx).id());

        features.push(fs);
        gates.push(gate);
    }
    DocFeatures { features, gates }
}

/// For each token, the nearest token strictly above it whose x-extent
/// overlaps (a column-aligned predecessor).
fn compute_above(doc: &Document) -> Vec<Option<u32>> {
    let n = doc.tokens.len();
    let mut above: Vec<Option<u32>> = vec![None; n];
    // Scan all pairs: O(n^2) worst case but documents are a few hundred
    // tokens.
    for (t, slot) in above.iter_mut().enumerate() {
        let tb = &doc.tokens[t].bbox;
        let mut best: Option<(f32, u32)> = None;
        for o in 0..n {
            if o == t {
                continue;
            }
            let ob = &doc.tokens[o].bbox;
            // Strictly above with horizontal overlap.
            if ob.y1 <= tb.y0 && ob.x0 < tb.x1 && tb.x0 < ob.x1 {
                let dy = tb.y0 - ob.y1;
                if best.is_none_or(|(bd, _)| dy < bd) {
                    best = Some((dy, o as u32));
                }
            }
        }
        *slot = best.map(|(_, o)| o);
    }
    above
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};

    fn doc(rows: &[&str]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for (r, row) in rows.iter().enumerate() {
            let mut x = 10.0;
            for w in row.split_whitespace() {
                let width = 8.0 * w.len() as f32;
                b.push_token(Token::new(
                    w,
                    BBox::new(x, 30.0 * r as f32, x + width, 30.0 * r as f32 + 12.0),
                ));
                x += width + 5.0;
            }
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    #[test]
    fn fnv1a_constants_pinned() {
        // The weight table addresses are a pure function of these hashes;
        // any drift silently invalidates every trained model. The prime is
        // intentionally the historical (non-canonical) one — see its
        // definition — so the vectors below are computed for it, not the
        // textbook FNV-1a vectors.
        assert_eq!(FNV_OFFSET, 0xCBF2_9CE4_8422_2325);
        assert_eq!(FNV_PRIME, 0x1_0000_01B3);
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0x1162_BB90_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x3FEF_AB5E_F739_67E8);
    }

    #[test]
    fn incremental_hasher_matches_buffered_fnv() {
        // FeatHash streams must equal hashing the formatted payload.
        for kind in [0u8, 7, 22, 255] {
            for payload in ["", "bias", "total due", "g3-12", "ll8", "x0"] {
                let mut buf = vec![kind];
                buf.extend_from_slice(payload.as_bytes());
                assert_eq!(
                    FeatHash::new(kind).str(payload).id(),
                    fnv1a(&buf),
                    "kind {kind} payload {payload:?}"
                );
            }
        }
        for v in [0usize, 9, 10, 123, 30, usize::MAX] {
            let formatted = format!("li{v}");
            let mut buf = vec![20u8];
            buf.extend_from_slice(formatted.as_bytes());
            assert_eq!(FeatHash::new(20).str("li").dec(v).id(), fnv1a(&buf));
        }
    }

    #[test]
    fn gate_masks() {
        assert!(gate_allows(type_gate("$5.00"), BaseType::Money));
        assert!(!gate_allows(type_gate("Amount"), BaseType::Money));
        assert!(gate_allows(type_gate("Amount"), BaseType::String));
        assert!(gate_allows(type_gate("Amount"), BaseType::Address));
        assert!(gate_allows(type_gate("01/02/2024"), BaseType::Date));
        assert!(gate_allows(type_gate("42"), BaseType::Number));
        assert!(!gate_allows(type_gate("word"), BaseType::Number));
    }

    #[test]
    fn features_nonempty_for_all_tokens() {
        let d = doc(&["Amount Due $5.00", "Date 01/02/2024"]);
        let f = extract(&d, &Lexicon::empty());
        assert_eq!(f.features.len(), d.tokens.len());
        assert!(f.features.iter().all(|fs| fs.len() >= 6));
    }

    #[test]
    fn left_context_features_differ_by_anchor() {
        // Same value token, different left phrases -> different feature
        // sets (this is what key-phrase swapping changes).
        let d1 = doc(&["Base Salary $5.00"]);
        let d2 = doc(&["Overtime Pay $5.00"]);
        let f1 = &extract(&d1, &Lexicon::empty()).features[2];
        let f2 = &extract(&d2, &Lexicon::empty()).features[2];
        assert_ne!(f1, f2);
        // But the lexical features of the token itself are shared.
        let shared: Vec<_> = f1.iter().filter(|x| f2.contains(x)).collect();
        assert!(!shared.is_empty());
    }

    #[test]
    fn above_feature_links_stacked_label() {
        let d = doc(&["Invoice Date", "01/02/2024"]);
        // Token 2 = the date, directly below "Invoice"(0)/"Date"(1).
        let above = compute_above(&d);
        assert!(above[2].is_some());
        let a = above[2].unwrap() as usize;
        assert!(a == 0 || a == 1);
    }

    #[test]
    fn above_ignores_non_overlapping_columns() {
        let mut b = DocumentBuilder::new("t");
        b.push_token(Token::new("Left", BBox::new(0.0, 0.0, 30.0, 12.0)));
        b.push_token(Token::new("Right", BBox::new(500.0, 30.0, 540.0, 42.0)));
        let d = b.build();
        let above = compute_above(&d);
        assert_eq!(above[1], None);
    }

    #[test]
    fn deterministic_hashes() {
        let d = doc(&["Total $9.99"]);
        let a = extract(&d, &Lexicon::empty());
        let b = extract(&d, &Lexicon::empty());
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn df_bucket_changes_features() {
        let d = doc(&["Total $9.99"]);
        let empty = extract(&d, &Lexicon::empty());
        let corpus = fieldswap_datagen::generate(fieldswap_datagen::Domain::Invoices, 1, 50);
        let lex = Lexicon::pretrain(&corpus.documents);
        let trained = extract(&d, &lex);
        assert_ne!(empty.features[0], trained.features[0]);
    }
}
