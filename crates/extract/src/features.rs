//! Per-token feature extraction for the sequence labeler.
//!
//! Features are hashed into `u64` ids; the model maps `(feature, tag)`
//! pairs into its weight table. The extractor pre-computes document-level
//! structure (line membership, left-neighbor chains, vertical alignment)
//! once, then emits each token's features.
//!
//! Hashing is incremental: [`FeatHash`] streams bytes through FNV-1a, so
//! composite features (`"g{gx}-{gy}"`, joined left phrases, …) are hashed
//! without materializing an intermediate `String`. The streamed bytes are
//! exactly the bytes the formatted strings would contain, so feature ids —
//! and therefore trained model weights — are unchanged.

use crate::lexicon::Lexicon;
use fieldswap_docmodel::{BaseType, Document};
use fieldswap_ocr::candidate_matches_type;

/// Bitmask of base types a token could plausibly belong to. Used to gate
/// the tag space per token: a word is never a money amount.
#[inline]
pub fn type_gate(text: &str) -> u8 {
    let mut mask = 0u8;
    // Address and String fields mix arbitrary tokens; always allowed.
    mask |= 1 << BaseType::Address as u8;
    mask |= 1 << BaseType::String as u8;
    let numeric_ish = text.chars().any(|c| c.is_ascii_digit());
    if candidate_matches_type(text, BaseType::Money) {
        mask |= 1 << BaseType::Money as u8;
    }
    if candidate_matches_type(text, BaseType::Date) || numeric_ish {
        mask |= 1 << BaseType::Date as u8;
    }
    if numeric_ish {
        mask |= 1 << BaseType::Number as u8;
        // Bare numbers also appear inside money columns without symbols.
        mask |= 1 << BaseType::Money as u8;
    }
    mask
}

/// Whether the gate `mask` admits `ty`.
#[inline]
pub fn gate_allows(mask: u8, ty: BaseType) -> bool {
    mask & (1 << ty as u8) != 0
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
// NOTE: this prime is what the original implementation shipped with — it
// drops two hex zeros from the canonical 64-bit FNV prime 0x100_0000_01B3.
// It is pinned deliberately: every trained model's weight-table addresses
// depend on it, and the mixer in `bucket()` restores avalanche quality, so
// correcting it would invalidate artifacts for no measurable gain.
const FNV_PRIME: u64 = 0x1_0000_01B3;

/// Buffered FNV-1a over a byte slice — the oracle the incremental
/// [`FeatHash`] is tested against.
#[cfg(test)]
#[inline]
fn fnv1a(s: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a feature hasher. `FeatHash::new(kind).str(p).id()`
/// hashes the same byte stream as hashing `[kind] ++ p.as_bytes()` at
/// once, so it is a drop-in, allocation-free replacement for building the
/// payload in a buffer first.
#[derive(Clone, Copy)]
struct FeatHash(u64);

impl FeatHash {
    #[inline]
    fn new(kind: u8) -> Self {
        let mut h = FNV_OFFSET;
        h ^= u64::from(kind);
        h = h.wrapping_mul(FNV_PRIME);
        FeatHash(h)
    }

    #[inline]
    fn bytes(mut self, s: &[u8]) -> Self {
        for b in s {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    #[inline]
    fn str(self, s: &str) -> Self {
        self.bytes(s.as_bytes())
    }

    /// Streams the decimal digits of `v` — the bytes `format!("{v}")`
    /// would produce.
    #[inline]
    fn dec(self, v: usize) -> Self {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.bytes(&buf[i..])
    }

    #[inline]
    fn id(self) -> u64 {
        self.0
    }
}

/// Collapsed character-shape string (`"Abc-12"` → `"Xx-9"`), written into
/// `out` (cleared first) to avoid a per-token allocation.
fn shape_into(text: &str, out: &mut String) {
    out.clear();
    let mut last = '\0';
    for c in text.chars() {
        let s = if c.is_ascii_uppercase() {
            'X'
        } else if c.is_ascii_lowercase() {
            'x'
        } else if c.is_ascii_digit() {
            '9'
        } else {
            c
        };
        if s != last {
            out.push(s);
            last = s;
        }
    }
}

/// Pre-computed document structure + per-token feature lists.
pub struct DocFeatures {
    /// `features[t]` — hashed feature ids for token `t`.
    pub features: Vec<Vec<u64>>,
    /// `gates[t]` — base-type bitmask for token `t`.
    pub gates: Vec<u8>,
}

/// Flat per-document feature table: every token's hashed feature ids in
/// one contiguous buffer plus `(offset, len)` spans — the inference-path
/// counterpart of [`DocFeatures`]. Same ids in the same order, no
/// per-token `Vec`, fully reusable across documents.
#[derive(Default)]
pub struct FlatFeatures {
    ids: Vec<u64>,
    spans: Vec<(u32, u32)>,
    gates: Vec<u8>,
}

impl FlatFeatures {
    /// Number of tokens the table covers.
    pub fn n_tokens(&self) -> usize {
        self.spans.len()
    }

    /// The hashed feature ids of token `t`, in extraction order.
    #[inline]
    pub fn row(&self, t: usize) -> &[u64] {
        let (start, k) = self.spans[t];
        &self.ids[start as usize..start as usize + k as usize]
    }

    /// The base-type gate bitmask of token `t`.
    #[inline]
    pub fn gate(&self, t: usize) -> u8 {
        self.gates[t]
    }

    /// All gate bitmasks, indexed by token.
    pub fn gates(&self) -> &[u8] {
        &self.gates
    }

    fn clear(&mut self) {
        self.ids.clear();
        self.spans.clear();
        self.gates.clear();
    }
}

/// Reusable working memory for [`extract_into`]: document structure
/// buffers plus a string arena for normalized token texts. One scratch
/// serves any number of documents; a warm scratch allocates nothing for
/// documents no larger than the largest seen so far.
#[derive(Default)]
pub struct FeatureScratch {
    line_of: Vec<usize>,
    pos_in_line: Vec<usize>,
    above: Vec<Option<u32>>,
    /// Struct-of-arrays bbox copies (`x0`, `x1`, `y1`) for the
    /// nearest-above scan.
    gx0: Vec<f32>,
    gx1: Vec<f32>,
    gy1: Vec<f32>,
    /// Normalized token texts; slots (and their capacity) are reused.
    normed: Vec<String>,
    shape_buf: String,
    df_buf: String,
}

/// Extracts features for every token of `doc`.
///
/// Convenience wrapper over [`extract_into`] producing the nested
/// [`DocFeatures`] layout the training path consumes; the ids are
/// identical to the flat table's, row for row.
pub fn extract(doc: &Document, lexicon: &Lexicon) -> DocFeatures {
    let mut scratch = FeatureScratch::default();
    let mut flat = FlatFeatures::default();
    extract_into(doc, lexicon, &mut scratch, &mut flat);
    DocFeatures {
        features: (0..flat.n_tokens()).map(|t| flat.row(t).to_vec()).collect(),
        gates: flat.gates.clone(),
    }
}

/// Extracts features for every token of `doc` into `out`, reusing
/// `scratch` for all intermediate structure. This is the single source of
/// truth for the feature definitions; a warm `(scratch, out)` pair makes
/// extraction allocation-free.
pub fn extract_into(
    doc: &Document,
    lexicon: &Lexicon,
    scratch: &mut FeatureScratch,
    out: &mut FlatFeatures,
) {
    let FeatureScratch {
        line_of,
        pos_in_line,
        above,
        gx0,
        gx1,
        gy1,
        normed,
        shape_buf,
        df_buf,
    } = scratch;
    let n = doc.tokens.len();
    out.clear();
    // line_of[t] and position within line.
    line_of.clear();
    line_of.resize(n, usize::MAX);
    pos_in_line.clear();
    pos_in_line.resize(n, 0);
    for (li, line) in doc.lines.iter().enumerate() {
        for (pi, &t) in line.tokens.iter().enumerate() {
            line_of[t as usize] = li;
            pos_in_line[t as usize] = pi;
        }
    }
    // Nearest token vertically above each token (same column band).
    compute_above_into(doc, above, gx0, gx1, gy1);
    // Normalized token texts, computed once: the raw loop re-normalizes
    // each token every time it appears as someone's neighbor (~6-8x).
    if normed.len() < n {
        normed.resize_with(n, String::new);
    }
    for (t, tok) in doc.tokens.iter().enumerate() {
        crate::lexicon::norm_into(&tok.text, &mut normed[t]);
    }

    for t in 0..n {
        let tok = &doc.tokens[t];
        let text = tok.text.as_str();
        let lower = normed[t].as_str();
        let start = out.ids.len();
        let fs = &mut out.ids;
        fs.push(FeatHash::new(0).str("bias").id());
        fs.push(FeatHash::new(1).str(lower).id());
        shape_into(text, shape_buf);
        fs.push(FeatHash::new(2).str(shape_buf).id());
        // Affixes.
        if lower.len() >= 3 {
            fs.push(FeatHash::new(3).str(&lower[..3]).id());
            fs.push(FeatHash::new(4).str(&lower[lower.len() - 3..]).id());
        }
        // Value-type flags.
        let gate = type_gate(text);
        fs.push(FeatHash::new(5).str("gate").dec(gate as usize).id());
        // DF bucket from unsupervised pre-training.
        fs.push(
            FeatHash::new(6)
                .str("df")
                .dec(lexicon.df_bucket_into(text, df_buf) as usize)
                .id(),
        );

        // Same-line left context: the 3 nearest tokens to the left, plus
        // their joined text (the key-phrase anchor for kv rows).
        if line_of[t] != usize::MAX {
            let line = &doc.lines[line_of[t]];
            let p = pos_in_line[t];
            // Nearest-first token indices of up to 3 left neighbors.
            let mut left_idx = [0usize; 3];
            let mut left_cnt = 0usize;
            for k in 1..=3usize {
                if p >= k {
                    let lt = line.tokens[p - k] as usize;
                    fs.push(FeatHash::new(7 + k as u8).str(&normed[lt]).id());
                    left_idx[left_cnt] = lt;
                    left_cnt += 1;
                }
            }
            if left_cnt > 0 {
                // Joined phrase in reading order (leftmost first),
                // streamed word by word (== join(" ")).
                let mut h11 = FeatHash::new(11);
                let mut h12 = FeatHash::new(12);
                for (i, &lt) in left_idx[..left_cnt].iter().rev().enumerate() {
                    if i > 0 {
                        h11 = h11.str(" ");
                        h12 = h12.str(" ");
                    }
                    h11 = h11.str(&normed[lt]);
                    h12 = h12.str(&normed[lt]);
                }
                fs.push(h11.id());
                // Conjunction with the left phrase's DF bucket: phrase-like
                // left context is a strong anchor. The nearest left word is
                // the phrase's last word in reading order.
                let df = lexicon.df_bucket_into(&normed[left_idx[0]], df_buf);
                fs.push(h12.str("|df").dec(df as usize).id());
            }
            // Right neighbor on the line (values left of their labels in
            // some layouts).
            if p + 1 < line.tokens.len() {
                let rt = line.tokens[p + 1] as usize;
                fs.push(FeatHash::new(13).str(&normed[rt]).id());
            }
            // First token of the line (the row label in tables).
            let first = line.tokens[0] as usize;
            if first != t {
                fs.push(FeatHash::new(14).str(&normed[first]).id());
                // Row label + column bucket: the feature that reads a
                // table cell as (row phrase, column).
                let col = (tok.bbox.center().x / 125.0) as usize;
                fs.push(
                    FeatHash::new(15)
                        .str(&normed[first])
                        .str("|c")
                        .dec(col)
                        .id(),
                );
                // Row label bigram (e.g. "base salary").
                if line.tokens.len() > 1 && line.tokens[1] as usize != t {
                    let second = &normed[line.tokens[1] as usize];
                    fs.push(
                        FeatHash::new(22)
                            .str(&normed[first])
                            .str(" ")
                            .str(second)
                            .id(),
                    );
                }
            }
            // Line length bucket.
            fs.push(
                FeatHash::new(16)
                    .str("ll")
                    .dec(line.tokens.len().min(8))
                    .id(),
            );
        }

        // Vertically-above context (stacked label/value layouts and table
        // column headers).
        if let Some(a) = above[t] {
            fs.push(FeatHash::new(17).str(&normed[a as usize]).id());
            // Above + its left neighbor (two-word stacked labels).
            if line_of[a as usize] != usize::MAX {
                let aline = &doc.lines[line_of[a as usize]];
                let ap = pos_in_line[a as usize];
                if ap >= 1 {
                    let prev = &normed[aline.tokens[ap - 1] as usize];
                    fs.push(
                        FeatHash::new(18)
                            .str(prev)
                            .str(" ")
                            .str(&normed[a as usize])
                            .id(),
                    );
                }
            }
        }

        // Absolute layout: page-grid cell and line index bucket — the
        // memorization-prone features FieldSwap regularizes.
        let c = tok.bbox.center();
        let gx = (c.x / 125.0) as usize;
        let gy = (c.y / 100.0) as usize;
        fs.push(FeatHash::new(19).str("g").dec(gx).str("-").dec(gy).id());
        if line_of[t] != usize::MAX {
            fs.push(FeatHash::new(20).str("li").dec(line_of[t].min(30)).id());
        }
        fs.push(FeatHash::new(21).str("x").dec(gx).id());

        out.spans
            .push((start as u32, (out.ids.len() - start) as u32));
        out.gates.push(gate);
    }
}

/// For each token, the nearest token strictly above it whose x-extent
/// overlaps (a column-aligned predecessor).
///
/// Two passes over struct-of-arrays bbox copies: a branch-light min
/// reduction finds the smallest gap, then a first-match scan recovers the
/// winning index. The result equals the naive keep-first-strict-min scan
/// ([`compute_above_reference`]) exactly: the minimum of a set of finite
/// gaps is order-independent, and the first index attaining it is the one
/// the sequential scan would have kept.
fn compute_above_into(
    doc: &Document,
    above: &mut Vec<Option<u32>>,
    gx0: &mut Vec<f32>,
    gx1: &mut Vec<f32>,
    gy1: &mut Vec<f32>,
) {
    let n = doc.tokens.len();
    above.clear();
    above.resize(n, None);
    gx0.clear();
    gx1.clear();
    gy1.clear();
    gx0.extend(doc.tokens.iter().map(|t| t.bbox.x0));
    gx1.extend(doc.tokens.iter().map(|t| t.bbox.x1));
    gy1.extend(doc.tokens.iter().map(|t| t.bbox.y1));
    for (t, slot) in above.iter_mut().enumerate() {
        let tb = &doc.tokens[t].bbox;
        let (tx0, tx1, ty0) = (tb.x0, tb.x1, tb.y0);
        // Mask the token itself out of its own scan (a degenerate
        // zero-height box would otherwise match with gap 0).
        let saved = gy1[t];
        gy1[t] = f32::INFINITY;
        // Pass 1: smallest vertical gap among column-overlapping tokens
        // strictly above. Branchless selects (non-short-circuit `&`,
        // compare-and-choose instead of NaN-aware `f32::min` — no
        // operand here is ever NaN) with four independent accumulators
        // to break the min-latency chain.
        let (ys, xa, xb) = (&gy1[..n], &gx0[..n], &gx1[..n]);
        let mut m = [f32::INFINITY; 4];
        let mut o = 0;
        while o + 4 <= n {
            for (k, mk) in m.iter_mut().enumerate() {
                let i = o + k;
                let ok = (ys[i] <= ty0) & (xa[i] < tx1) & (tx0 < xb[i]);
                let cand = if ok { ty0 - ys[i] } else { f32::INFINITY };
                *mk = if cand < *mk { cand } else { *mk };
            }
            o += 4;
        }
        while o < n {
            let ok = (ys[o] <= ty0) & (xa[o] < tx1) & (tx0 < xb[o]);
            let cand = if ok { ty0 - ys[o] } else { f32::INFINITY };
            m[0] = if cand < m[0] { cand } else { m[0] };
            o += 1;
        }
        let mut best_dy = f32::INFINITY;
        for mk in m {
            best_dy = if mk < best_dy { mk } else { best_dy };
        }
        // Pass 2: the first index attaining the minimum gap.
        if best_dy < f32::INFINITY {
            for o in 0..n {
                if gy1[o] <= ty0 && gx0[o] < tx1 && tx0 < gx1[o] && ty0 - gy1[o] == best_dy {
                    *slot = Some(o as u32);
                    break;
                }
            }
        }
        gy1[t] = saved;
    }
}

/// The original all-pairs nearest-above scan, kept as the oracle for
/// [`compute_above_into`].
#[cfg(test)]
fn compute_above_reference(doc: &Document) -> Vec<Option<u32>> {
    let n = doc.tokens.len();
    let mut above = vec![None; n];
    for (t, slot) in above.iter_mut().enumerate() {
        let tb = &doc.tokens[t].bbox;
        let mut best: Option<(f32, u32)> = None;
        for o in 0..n {
            if o == t {
                continue;
            }
            let ob = &doc.tokens[o].bbox;
            // Strictly above with horizontal overlap.
            if ob.y1 <= tb.y0 && ob.x0 < tb.x1 && tb.x0 < ob.x1 {
                let dy = tb.y0 - ob.y1;
                if best.is_none_or(|(bd, _)| dy < bd) {
                    best = Some((dy, o as u32));
                }
            }
        }
        *slot = best.map(|(_, o)| o);
    }
    above
}

#[cfg(test)]
fn compute_above(doc: &Document) -> Vec<Option<u32>> {
    let mut out = Vec::new();
    let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
    compute_above_into(doc, &mut out, &mut a, &mut b, &mut c);
    assert_eq!(out, compute_above_reference(doc), "above-scan drift");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};

    fn doc(rows: &[&str]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for (r, row) in rows.iter().enumerate() {
            let mut x = 10.0;
            for w in row.split_whitespace() {
                let width = 8.0 * w.len() as f32;
                b.push_token(Token::new(
                    w,
                    BBox::new(x, 30.0 * r as f32, x + width, 30.0 * r as f32 + 12.0),
                ));
                x += width + 5.0;
            }
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    #[test]
    fn fnv1a_constants_pinned() {
        // The weight table addresses are a pure function of these hashes;
        // any drift silently invalidates every trained model. The prime is
        // intentionally the historical (non-canonical) one — see its
        // definition — so the vectors below are computed for it, not the
        // textbook FNV-1a vectors.
        assert_eq!(FNV_OFFSET, 0xCBF2_9CE4_8422_2325);
        assert_eq!(FNV_PRIME, 0x1_0000_01B3);
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0x1162_BB90_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x3FEF_AB5E_F739_67E8);
    }

    #[test]
    fn incremental_hasher_matches_buffered_fnv() {
        // FeatHash streams must equal hashing the formatted payload.
        for kind in [0u8, 7, 22, 255] {
            for payload in ["", "bias", "total due", "g3-12", "ll8", "x0"] {
                let mut buf = vec![kind];
                buf.extend_from_slice(payload.as_bytes());
                assert_eq!(
                    FeatHash::new(kind).str(payload).id(),
                    fnv1a(&buf),
                    "kind {kind} payload {payload:?}"
                );
            }
        }
        for v in [0usize, 9, 10, 123, 30, usize::MAX] {
            let formatted = format!("li{v}");
            let mut buf = vec![20u8];
            buf.extend_from_slice(formatted.as_bytes());
            assert_eq!(FeatHash::new(20).str("li").dec(v).id(), fnv1a(&buf));
        }
    }

    #[test]
    fn gate_masks() {
        assert!(gate_allows(type_gate("$5.00"), BaseType::Money));
        assert!(!gate_allows(type_gate("Amount"), BaseType::Money));
        assert!(gate_allows(type_gate("Amount"), BaseType::String));
        assert!(gate_allows(type_gate("Amount"), BaseType::Address));
        assert!(gate_allows(type_gate("01/02/2024"), BaseType::Date));
        assert!(gate_allows(type_gate("42"), BaseType::Number));
        assert!(!gate_allows(type_gate("word"), BaseType::Number));
    }

    #[test]
    fn features_nonempty_for_all_tokens() {
        let d = doc(&["Amount Due $5.00", "Date 01/02/2024"]);
        let f = extract(&d, &Lexicon::empty());
        assert_eq!(f.features.len(), d.tokens.len());
        assert!(f.features.iter().all(|fs| fs.len() >= 6));
    }

    #[test]
    fn left_context_features_differ_by_anchor() {
        // Same value token, different left phrases -> different feature
        // sets (this is what key-phrase swapping changes).
        let d1 = doc(&["Base Salary $5.00"]);
        let d2 = doc(&["Overtime Pay $5.00"]);
        let f1 = &extract(&d1, &Lexicon::empty()).features[2];
        let f2 = &extract(&d2, &Lexicon::empty()).features[2];
        assert_ne!(f1, f2);
        // But the lexical features of the token itself are shared.
        let shared: Vec<_> = f1.iter().filter(|x| f2.contains(x)).collect();
        assert!(!shared.is_empty());
    }

    #[test]
    fn above_feature_links_stacked_label() {
        let d = doc(&["Invoice Date", "01/02/2024"]);
        // Token 2 = the date, directly below "Invoice"(0)/"Date"(1).
        let above = compute_above(&d);
        assert!(above[2].is_some());
        let a = above[2].unwrap() as usize;
        assert!(a == 0 || a == 1);
    }

    #[test]
    fn above_ignores_non_overlapping_columns() {
        let mut b = DocumentBuilder::new("t");
        b.push_token(Token::new("Left", BBox::new(0.0, 0.0, 30.0, 12.0)));
        b.push_token(Token::new("Right", BBox::new(500.0, 30.0, 540.0, 42.0)));
        let d = b.build();
        let above = compute_above(&d);
        assert_eq!(above[1], None);
    }

    #[test]
    fn deterministic_hashes() {
        let d = doc(&["Total $9.99"]);
        let a = extract(&d, &Lexicon::empty());
        let b = extract(&d, &Lexicon::empty());
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn flat_extraction_matches_nested_with_scratch_reuse() {
        // One warm (scratch, flat) pair across documents of varying size
        // must reproduce the nested extraction row for row — the identity
        // the frozen inference path relies on.
        let corpus = fieldswap_datagen::generate(fieldswap_datagen::Domain::Earnings, 11, 8);
        let lex = Lexicon::pretrain(&corpus.documents);
        let mut scratch = FeatureScratch::default();
        let mut flat = FlatFeatures::default();
        let mut docs: Vec<&Document> = corpus.documents.iter().collect();
        let small = doc(&["Total $9.99"]);
        docs.insert(3, &small); // shrink mid-stream: stale arena slots must not leak
        for d in docs {
            let nested = extract(d, &lex);
            extract_into(d, &lex, &mut scratch, &mut flat);
            assert_eq!(flat.n_tokens(), nested.features.len());
            assert_eq!(flat.gates(), &nested.gates[..]);
            for t in 0..flat.n_tokens() {
                assert_eq!(
                    flat.row(t),
                    &nested.features[t][..],
                    "token {t} of {}",
                    d.id
                );
            }
        }
    }

    #[test]
    fn df_bucket_changes_features() {
        let d = doc(&["Total $9.99"]);
        let empty = extract(&d, &Lexicon::empty());
        let corpus = fieldswap_datagen::generate(fieldswap_datagen::Domain::Invoices, 1, 50);
        let lex = Lexicon::pretrain(&corpus.documents);
        let trained = extract(&d, &lex);
        assert_ne!(empty.features[0], trained.features[0]);
    }
}
