//! Per-token feature extraction for the sequence labeler.
//!
//! Features are hashed into `u64` ids; the model maps `(feature, tag)`
//! pairs into its weight table. The extractor pre-computes document-level
//! structure (line membership, left-neighbor chains, vertical alignment)
//! once, then emits each token's features.

use crate::lexicon::Lexicon;
use fieldswap_docmodel::{BaseType, Document};
use fieldswap_ocr::candidate_matches_type;

/// Bitmask of base types a token could plausibly belong to. Used to gate
/// the tag space per token: a word is never a money amount.
pub fn type_gate(text: &str) -> u8 {
    let mut mask = 0u8;
    // Address and String fields mix arbitrary tokens; always allowed.
    mask |= 1 << BaseType::Address as u8;
    mask |= 1 << BaseType::String as u8;
    let numeric_ish = text.chars().any(|c| c.is_ascii_digit());
    if candidate_matches_type(text, BaseType::Money) {
        mask |= 1 << BaseType::Money as u8;
    }
    if candidate_matches_type(text, BaseType::Date) || numeric_ish {
        mask |= 1 << BaseType::Date as u8;
    }
    if numeric_ish {
        mask |= 1 << BaseType::Number as u8;
        // Bare numbers also appear inside money columns without symbols.
        mask |= 1 << BaseType::Money as u8;
    }
    mask
}

/// Whether the gate `mask` admits `ty`.
pub fn gate_allows(mask: u8, ty: BaseType) -> bool {
    mask & (1 << ty as u8) != 0
}

fn fnv1a(s: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

fn feat(kind: u8, payload: &str) -> u64 {
    let mut buf = Vec::with_capacity(payload.len() + 1);
    buf.push(kind);
    buf.extend_from_slice(payload.as_bytes());
    fnv1a(&buf)
}

fn norm(text: &str) -> String {
    text.trim_matches(|c: char| c.is_ascii_punctuation())
        .to_lowercase()
}

fn shape(text: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in text.chars() {
        let s = if c.is_ascii_uppercase() {
            'X'
        } else if c.is_ascii_lowercase() {
            'x'
        } else if c.is_ascii_digit() {
            '9'
        } else {
            c
        };
        if s != last {
            out.push(s);
            last = s;
        }
    }
    out
}

/// Pre-computed document structure + per-token feature lists.
pub struct DocFeatures {
    /// `features[t]` — hashed feature ids for token `t`.
    pub features: Vec<Vec<u64>>,
    /// `gates[t]` — base-type bitmask for token `t`.
    pub gates: Vec<u8>,
}

/// Extracts features for every token of `doc`.
pub fn extract(doc: &Document, lexicon: &Lexicon) -> DocFeatures {
    let n = doc.tokens.len();
    // line_of[t] and position within line.
    let mut line_of = vec![usize::MAX; n];
    let mut pos_in_line = vec![0usize; n];
    for (li, line) in doc.lines.iter().enumerate() {
        for (pi, &t) in line.tokens.iter().enumerate() {
            line_of[t as usize] = li;
            pos_in_line[t as usize] = pi;
        }
    }
    // Nearest token vertically above each token (same column band).
    let above = compute_above(doc);

    let mut features = Vec::with_capacity(n);
    let mut gates = Vec::with_capacity(n);
    for t in 0..n {
        let tok = &doc.tokens[t];
        let text = tok.text.as_str();
        let lower = norm(text);
        let mut fs: Vec<u64> = Vec::with_capacity(28);
        fs.push(feat(0, "bias"));
        fs.push(feat(1, &lower));
        fs.push(feat(2, &shape(text)));
        // Affixes.
        if lower.len() >= 3 {
            fs.push(feat(3, &lower[..3]));
            fs.push(feat(4, &lower[lower.len() - 3..]));
        }
        // Value-type flags.
        let gate = type_gate(text);
        fs.push(feat(5, &format!("gate{gate}")));
        // DF bucket from unsupervised pre-training.
        fs.push(feat(6, &format!("df{}", lexicon.df_bucket(text))));

        // Same-line left context: the 3 nearest tokens to the left, plus
        // their joined text (the key-phrase anchor for kv rows).
        if line_of[t] != usize::MAX {
            let line = &doc.lines[line_of[t]];
            let p = pos_in_line[t];
            let mut left_words: Vec<String> = Vec::new();
            for k in 1..=3usize {
                if p >= k {
                    let lt = line.tokens[p - k] as usize;
                    let w = norm(&doc.tokens[lt].text);
                    fs.push(feat(7 + k as u8, &w));
                    left_words.push(w);
                }
            }
            if !left_words.is_empty() {
                left_words.reverse();
                fs.push(feat(11, &left_words.join(" ")));
                // Conjunction with the left phrase's DF bucket: phrase-like
                // left context is a strong anchor.
                let df = lexicon.df_bucket(&left_words[left_words.len() - 1]);
                fs.push(feat(12, &format!("{}|df{df}", left_words.join(" "))));
            }
            // Right neighbor on the line (values left of their labels in
            // some layouts).
            if p + 1 < line.tokens.len() {
                let rt = line.tokens[p + 1] as usize;
                fs.push(feat(13, &norm(&doc.tokens[rt].text)));
            }
            // First token of the line (the row label in tables).
            let first = line.tokens[0] as usize;
            if first != t {
                fs.push(feat(14, &norm(&doc.tokens[first].text)));
                // Row label + column bucket: the feature that reads a
                // table cell as (row phrase, column).
                let col = (tok.bbox.center().x / 125.0) as usize;
                fs.push(feat(
                    15,
                    &format!("{}|c{col}", norm(&doc.tokens[first].text)),
                ));
                // Row label bigram (e.g. "base salary").
                if line.tokens.len() > 1 && line.tokens[1] as usize != t {
                    let second = norm(&doc.tokens[line.tokens[1] as usize].text);
                    fs.push(feat(
                        22,
                        &format!("{} {}", norm(&doc.tokens[first].text), second),
                    ));
                }
            }
            // Line length bucket.
            fs.push(feat(16, &format!("ll{}", line.tokens.len().min(8))));
        }

        // Vertically-above context (stacked label/value layouts and table
        // column headers).
        if let Some(a) = above[t] {
            fs.push(feat(17, &norm(&doc.tokens[a as usize].text)));
            // Above + its left neighbor (two-word stacked labels).
            if line_of[a as usize] != usize::MAX {
                let aline = &doc.lines[line_of[a as usize]];
                let ap = pos_in_line[a as usize];
                if ap >= 1 {
                    let prev = norm(&doc.tokens[aline.tokens[ap - 1] as usize].text);
                    fs.push(feat(
                        18,
                        &format!("{} {}", prev, norm(&doc.tokens[a as usize].text)),
                    ));
                }
            }
        }

        // Absolute layout: page-grid cell and line index bucket — the
        // memorization-prone features FieldSwap regularizes.
        let c = tok.bbox.center();
        let gx = (c.x / 125.0) as usize;
        let gy = (c.y / 100.0) as usize;
        fs.push(feat(19, &format!("g{gx}-{gy}")));
        if line_of[t] != usize::MAX {
            fs.push(feat(20, &format!("li{}", line_of[t].min(30))));
        }
        fs.push(feat(21, &format!("x{gx}")));

        features.push(fs);
        gates.push(gate);
    }
    DocFeatures { features, gates }
}

/// For each token, the nearest token strictly above it whose x-extent
/// overlaps (a column-aligned predecessor).
fn compute_above(doc: &Document) -> Vec<Option<u32>> {
    let n = doc.tokens.len();
    let mut above: Vec<Option<u32>> = vec![None; n];
    // Scan all pairs: O(n^2) worst case but documents are a few hundred
    // tokens.
    for (t, slot) in above.iter_mut().enumerate() {
        let tb = &doc.tokens[t].bbox;
        let mut best: Option<(f32, u32)> = None;
        for o in 0..n {
            if o == t {
                continue;
            }
            let ob = &doc.tokens[o].bbox;
            // Strictly above with horizontal overlap.
            if ob.y1 <= tb.y0 && ob.x0 < tb.x1 && tb.x0 < ob.x1 {
                let dy = tb.y0 - ob.y1;
                if best.is_none_or(|(bd, _)| dy < bd) {
                    best = Some((dy, o as u32));
                }
            }
        }
        *slot = best.map(|(_, o)| o);
    }
    above
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};

    fn doc(rows: &[&str]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for (r, row) in rows.iter().enumerate() {
            let mut x = 10.0;
            for w in row.split_whitespace() {
                let width = 8.0 * w.len() as f32;
                b.push_token(Token::new(
                    w,
                    BBox::new(x, 30.0 * r as f32, x + width, 30.0 * r as f32 + 12.0),
                ));
                x += width + 5.0;
            }
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    #[test]
    fn gate_masks() {
        assert!(gate_allows(type_gate("$5.00"), BaseType::Money));
        assert!(!gate_allows(type_gate("Amount"), BaseType::Money));
        assert!(gate_allows(type_gate("Amount"), BaseType::String));
        assert!(gate_allows(type_gate("Amount"), BaseType::Address));
        assert!(gate_allows(type_gate("01/02/2024"), BaseType::Date));
        assert!(gate_allows(type_gate("42"), BaseType::Number));
        assert!(!gate_allows(type_gate("word"), BaseType::Number));
    }

    #[test]
    fn features_nonempty_for_all_tokens() {
        let d = doc(&["Amount Due $5.00", "Date 01/02/2024"]);
        let f = extract(&d, &Lexicon::empty());
        assert_eq!(f.features.len(), d.tokens.len());
        assert!(f.features.iter().all(|fs| fs.len() >= 6));
    }

    #[test]
    fn left_context_features_differ_by_anchor() {
        // Same value token, different left phrases -> different feature
        // sets (this is what key-phrase swapping changes).
        let d1 = doc(&["Base Salary $5.00"]);
        let d2 = doc(&["Overtime Pay $5.00"]);
        let f1 = &extract(&d1, &Lexicon::empty()).features[2];
        let f2 = &extract(&d2, &Lexicon::empty()).features[2];
        assert_ne!(f1, f2);
        // But the lexical features of the token itself are shared.
        let shared: Vec<_> = f1.iter().filter(|x| f2.contains(x)).collect();
        assert!(!shared.is_empty());
    }

    #[test]
    fn above_feature_links_stacked_label() {
        let d = doc(&["Invoice Date", "01/02/2024"]);
        // Token 2 = the date, directly below "Invoice"(0)/"Date"(1).
        let above = compute_above(&d);
        assert!(above[2].is_some());
        let a = above[2].unwrap() as usize;
        assert!(a == 0 || a == 1);
    }

    #[test]
    fn above_ignores_non_overlapping_columns() {
        let mut b = DocumentBuilder::new("t");
        b.push_token(Token::new("Left", BBox::new(0.0, 0.0, 30.0, 12.0)));
        b.push_token(Token::new("Right", BBox::new(500.0, 30.0, 540.0, 42.0)));
        let d = b.build();
        let above = compute_above(&d);
        assert_eq!(above[1], None);
    }

    #[test]
    fn deterministic_hashes() {
        let d = doc(&["Total $9.99"]);
        let a = extract(&d, &Lexicon::empty());
        let b = extract(&d, &Lexicon::empty());
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn df_bucket_changes_features() {
        let d = doc(&["Total $9.99"]);
        let empty = extract(&d, &Lexicon::empty());
        let corpus = fieldswap_datagen::generate(fieldswap_datagen::Domain::Invoices, 1, 50);
        let lex = Lexicon::pretrain(&corpus.documents);
        let trained = extract(&d, &lex);
        assert_ne!(empty.features[0], trained.features[0]);
    }
}
