//! The averaged structured perceptron with Viterbi decoding.
//!
//! Emission scores hash `(feature, tag)` pairs into a fixed weight table;
//! transition scores live in a dense `n_tags x n_tags` table but only
//! legal BIOES transitions are ever visited. Training follows the classic
//! collins-perceptron recipe with lazy averaging; inference applies the
//! schema's single-instance constraint by keeping the best-scoring span
//! per field (Section II-C: constraints at inference time only).
//!
//! Hot-path layout: the `(feature, tag)` bucket indices of a document are
//! interned once into a [`DocBuckets`] table, so every Viterbi sweep and
//! perceptron update is a gather-and-sum over flat `&[u32]` slices instead
//! of re-hashing. Viterbi itself runs on a reusable [`ViterbiScratch`]
//! (two score rows + one flat backpointer matrix) and allocates nothing
//! per document once warm. Results are bit-identical to the naive
//! implementation (see `viterbi_reference` in the tests).

use crate::features::{extract, gate_allows, DocFeatures};
use crate::lexicon::Lexicon;
use crate::tags::{TagId, TagSet};
use fieldswap_docmodel::{BaseType, Corpus, Document, EntitySpan, Schema};
use fieldswap_parallel::WorkerPool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// log2 of the emission weight-table size (2^20 = ~1M buckets).
const WEIGHT_BITS: u32 = 20;
pub(crate) const WEIGHT_DIM: usize = 1 << WEIGHT_BITS;

/// Score used for impossible tags/paths.
pub(crate) const NEG: f32 = -1e30;

/// Speculation window of the training loop: each epoch's shuffled plan
/// is processed in windows of this many documents, decoded in parallel
/// against the weights as they stood at window start. The serial merge
/// then walks the window in plan order, consuming each speculative
/// decode as long as no update has touched the weights since window
/// start, and re-decoding with the current weights from the first
/// update onward — so the applied update sequence is exactly the
/// textbook online perceptron.
///
/// Both this window size and [`TrainConfig::train_jobs`] are therefore
/// pure performance knobs: the trained model is bitwise-identical for
/// every setting of either, and identical to the strictly serial
/// decode-update loop. Speculation pays off in proportion to decode
/// accuracy: a correctly predicted document triggers no update and
/// keeps the rest of its window's speculative decodes valid, so warm
/// epochs — where mispredictions are rare — parallelize almost fully.
pub const TRAIN_BATCH: usize = 8;

/// Cached training inputs for one synthetic document: extracted
/// features plus the gold tag sequence.
type SynthFeats = (DocFeatures, Vec<TagId>);

/// Training configuration.
///
/// Every epoch visits **all original documents once** plus
/// `synth_ratio x N` synthetic documents drawn round-robin from the
/// synthetic pool. The baseline (no synthetics) instead repeats its
/// originals `1 + synth_ratio` times per epoch, so both arms perform the
/// same number of weight updates — the reproduction of the paper's "train
/// both models for the same amount of time" control (Section IV-B).
///
/// The epoch is processed in speculative decode windows of
/// [`TRAIN_BATCH`] documents (see there for the determinism contract);
/// `train_jobs` only chooses how many threads decode each window and
/// never changes the trained model.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Synthetic documents per original document per epoch.
    pub synth_ratio: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// How many divergence recoveries (restart-with-replay) to attempt
    /// when an epoch produces a non-finite loss before giving up and
    /// scrubbing the non-finite weights in place. See
    /// [`Extractor::train_report`].
    pub max_divergence_retries: u32,
    /// Worker threads for the decode phase of each training window
    /// (0 = all cores, 1 = serial). Any value produces bitwise-identical
    /// models; >1 only changes wall-clock time.
    pub train_jobs: usize,
    /// Test-only divergence injection: a bitmask of epoch indices whose
    /// loss is forced to `NaN` on their *first* attempt (recovery retries
    /// of the same epoch run clean). Leave `0` outside of tests.
    #[doc(hidden)]
    pub inject_nan_epoch_mask: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            synth_ratio: 2.0,
            seed: 0,
            max_divergence_retries: 2,
            train_jobs: 1,
            inject_nan_epoch_mask: 0,
        }
    }
}

impl TrainConfig {
    /// A fast profile for unit tests.
    pub fn tiny() -> Self {
        Self {
            epochs: 3,
            synth_ratio: 2.0,
            seed: 0,
            ..Self::default()
        }
    }
}

/// What happened during one [`Extractor::train_mixed`] run, including the
/// divergence-recovery path: how many epochs actually executed (replays
/// included), how many non-finite epoch losses were observed, and whether
/// the run ended cleanly or had to scrub weights after exhausting its
/// retry budget.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainReport {
    /// Epochs executed, counting replayed epochs from recovery restarts.
    pub epochs_run: usize,
    /// Non-finite epoch losses observed.
    pub divergences: u32,
    /// Restart-with-replay recoveries performed.
    pub retries: u32,
    /// Whether the retry budget ran out and non-finite weights were
    /// scrubbed to zero instead of retrained.
    pub exhausted: bool,
    /// The (finite) loss of the last epoch, summed hinge margins.
    pub final_loss: f64,
}

/// Derives the recovery shuffle seed for a diverged epoch: the SplitMix64
/// finalizer over the base seed salted with the epoch and attempt number,
/// so every retry of every epoch perturbs the visiting order differently
/// and deterministically.
fn recovery_seed(seed: u64, epoch: u64, attempt: u64) -> u64 {
    let mut z = seed
        ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precomputed `(feature, tag)` weight-table indices for one document.
///
/// For token `t` with `k` features, the table holds `n_tags` contiguous
/// rows of `k` bucket indices each; `row(t, tag)` is the gather list whose
/// weight sum is the emission score of `tag` at `t`. Rows for tags blocked
/// by the token's type gate are left unfilled (never read) unless they are
/// the gold tag of a training document.
#[derive(Default)]
pub struct DocBuckets {
    /// `(flat offset, feature count)` per token.
    spans: Vec<(u32, u32)>,
    flat: Vec<u32>,
    gates: Vec<u8>,
    n_tags: usize,
}

impl DocBuckets {
    fn n_tokens(&self) -> usize {
        self.spans.len()
    }

    #[inline]
    fn row(&self, t: usize, tag: TagId) -> &[u32] {
        let (start, k) = self.spans[t];
        let s = start as usize + tag as usize * k as usize;
        &self.flat[s..s + k as usize]
    }
}

/// Reusable Viterbi working memory: two score rows swapped per step plus
/// one flat `n x n_tags` backpointer matrix. The decoded sequence lands in
/// `tags`.
#[derive(Default)]
pub struct ViterbiScratch {
    score: Vec<f32>,
    next: Vec<f32>,
    back: Vec<u16>,
    tags: Vec<TagId>,
}

/// Per-window working state of one plan entry during the parallel
/// decode phase of training. Slots are owned by the trainer and reused
/// across windows, so a warm slot decodes without allocating.
#[derive(Default)]
struct TrainSlot {
    /// Bucket table for synthetic entries (originals decode from the
    /// tables interned once up front).
    bk: DocBuckets,
    /// Viterbi buffers; the decoded tags stay in `vit.tags` until the
    /// merge phase has replayed the entry.
    vit: ViterbiScratch,
    /// Whether the decode disagreed with gold (an update is due).
    mispredicted: bool,
}

/// Reusable prediction working memory ([`Extractor::predict_with`]):
/// holds the bucket table and Viterbi scratch so batch prediction (e.g.
/// evaluation sweeps) allocates per document only the feature lists.
#[derive(Default)]
pub struct PredictScratch {
    buckets: DocBuckets,
    viterbi: ViterbiScratch,
}

/// The sequence-labeling extractor.
pub struct Extractor {
    tags: TagSet,
    /// Field base types, indexed by field id (for tag gating).
    field_types: Vec<BaseType>,
    /// Emission weights, hashed by (feature, tag).
    w: Vec<f32>,
    /// Lazy-averaging accumulator for `w`.
    w_acc: Vec<f64>,
    /// Transition weights `[prev * n_tags + next]`.
    trans: Vec<f32>,
    trans_acc: Vec<f64>,
    /// Update counter for averaging.
    step: u64,
    /// Whether `finalize_average` has been applied.
    averaged: bool,
    lexicon: Lexicon,
    /// Divergence-recovery statistics from the last training run.
    train_report: TrainReport,
}

#[inline]
pub(crate) fn bucket(feature: u64, tag: TagId) -> usize {
    // Mix the tag into the feature hash (splitmix-style finalizer).
    let mut z = feature ^ (u64::from(tag)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    (z as usize) & (WEIGHT_DIM - 1)
}

impl Extractor {
    /// An untrained extractor for `schema`, with `lexicon` providing the
    /// pre-trained document-frequency features.
    pub fn new(schema: &Schema, lexicon: Lexicon) -> Self {
        let tags = TagSet::new(schema.len());
        let n_tags = tags.len();
        Self {
            tags,
            field_types: schema.iter().map(|(_, f)| f.base_type).collect(),
            w: vec![0.0; WEIGHT_DIM],
            w_acc: vec![0.0; WEIGHT_DIM],
            trans: vec![0.0; n_tags * n_tags],
            trans_acc: vec![0.0; n_tags * n_tags],
            step: 0,
            averaged: false,
            lexicon: Lexicon::empty(),
            train_report: TrainReport::default(),
        }
        .with_lexicon(lexicon)
    }

    fn with_lexicon(mut self, lexicon: Lexicon) -> Self {
        self.lexicon = lexicon;
        self
    }

    /// The tag set in use.
    pub fn tag_set(&self) -> &TagSet {
        &self.tags
    }

    /// The raw internals [`crate::infer::FrozenModel::freeze`] snapshots:
    /// `(tags, field_types, emission weights, transitions, lexicon)`.
    pub(crate) fn frozen_parts(&self) -> (&TagSet, &[BaseType], &[f32], &[f32], &Lexicon) {
        (
            &self.tags,
            &self.field_types,
            &self.w,
            &self.trans,
            &self.lexicon,
        )
    }

    /// Divergence-recovery statistics from the last training run. An
    /// extractor reassembled with [`Extractor::from_parts`] reports the
    /// default (empty) record.
    pub fn train_report(&self) -> &TrainReport {
        &self.train_report
    }

    /// Emission score via the precomputed bucket table: a pure
    /// gather-and-sum, in the same feature order as hashing on the fly
    /// (bit-identical `f32` accumulation).
    #[inline]
    fn emission_bk(&self, bk: &DocBuckets, t: usize, tag: TagId) -> f32 {
        bk.row(t, tag).iter().map(|&b| self.w[b as usize]).sum()
    }

    /// Whether `tag` is admissible for a token with gate `mask`.
    fn tag_allowed(&self, tag: TagId, mask: u8) -> bool {
        match self.tags.parts(tag) {
            None => true,
            Some((f, _)) => gate_allows(mask, self.field_types[f as usize]),
        }
    }

    /// Interns the document's `(feature, tag)` bucket indices into `out`
    /// (reusing its allocations). Rows are filled for gate-admissible tags
    /// — the only rows Viterbi and the schema constraints ever read — plus
    /// each position's gold tag when `gold` is given: training updates
    /// touch gold rows even where the gate disagrees with the annotation.
    fn fill_buckets(&self, feats: &DocFeatures, gold: Option<&[TagId]>, out: &mut DocBuckets) {
        let n_tags = self.tags.len();
        let n = feats.features.len();
        out.n_tags = n_tags;
        out.spans.clear();
        out.gates.clear();
        out.gates.extend_from_slice(&feats.gates);
        let total: usize = feats.features.iter().map(|f| f.len() * n_tags).sum();
        out.flat.clear();
        out.flat.resize(total, 0);
        let mut start = 0usize;
        for t in 0..n {
            let fs = &feats.features[t];
            let k = fs.len();
            out.spans.push((start as u32, k as u32));
            for tag in 0..n_tags as u16 {
                if self.tag_allowed(tag, feats.gates[t]) || gold.is_some_and(|g| g[t] == tag) {
                    let row = &mut out.flat[start + tag as usize * k..][..k];
                    for (slot, &f) in row.iter_mut().zip(fs) {
                        *slot = bucket(f, tag) as u32;
                    }
                }
            }
            start += k * n_tags;
        }
    }

    /// Viterbi decoding over the legal-transition structure, writing the
    /// best tag sequence into `sc.tags`. All working memory lives in `sc`;
    /// a warm scratch performs no allocation.
    fn viterbi_into(&self, bk: &DocBuckets, sc: &mut ViterbiScratch) {
        let n = bk.n_tokens();
        let n_tags = self.tags.len();
        sc.tags.clear();
        if n == 0 {
            return;
        }
        sc.score.clear();
        sc.score.resize(n_tags, NEG);
        sc.next.clear();
        sc.next.resize(n_tags, NEG);
        sc.back.clear();
        sc.back.resize(n * n_tags, 0);

        // Emission, gated: blocked rows of the bucket table are unfilled,
        // so the gate check must come first.
        let emis = |t: usize, tag: TagId| -> f32 {
            if self.tag_allowed(tag, bk.gates[t]) {
                self.emission_bk(bk, t, tag)
            } else {
                NEG
            }
        };

        for tag in 0..n_tags as u16 {
            if self.tags.can_start(tag) {
                sc.score[tag as usize] = emis(0, tag);
            }
        }

        for t in 1..n {
            for v in sc.next.iter_mut() {
                *v = NEG;
            }
            for tag in 0..n_tags as u16 {
                let e = emis(t, tag);
                if e <= NEG {
                    continue;
                }
                let mut best = NEG;
                let mut best_prev = 0u16;
                for &prev in self.tags.prev_allowed(tag) {
                    let s = sc.score[prev as usize];
                    if s <= NEG {
                        continue;
                    }
                    let cand = s + self.trans[prev as usize * n_tags + tag as usize];
                    if cand > best {
                        best = cand;
                        best_prev = prev;
                    }
                }
                if best > NEG {
                    sc.next[tag as usize] = best + e;
                    sc.back[t * n_tags + tag as usize] = best_prev;
                }
            }
            std::mem::swap(&mut sc.score, &mut sc.next);
        }

        // Pick the best legal final tag.
        let mut best_tag = 0u16;
        let mut best = NEG;
        for tag in 0..n_tags as u16 {
            if self.tags.can_end(tag) && sc.score[tag as usize] > best {
                best = sc.score[tag as usize];
                best_tag = tag;
            }
        }
        sc.tags.resize(n, 0);
        sc.tags[n - 1] = best_tag;
        for t in (1..n).rev() {
            sc.tags[t - 1] = sc.back[t * n_tags + sc.tags[t] as usize];
        }
    }

    /// Applies one perceptron update and returns the pre-update hinge
    /// margin over the touched cells (predicted score minus gold score
    /// under the weights as they stood before this update). The per-epoch
    /// sum is the divergence signal watched by
    /// [`Extractor::train_mixed`]: a healthy run keeps it finite, and a
    /// corrupted weight table surfaces as `NaN`/`inf` here.
    fn update(&mut self, bk: &DocBuckets, gold: &[TagId], pred: &[TagId]) -> f64 {
        self.step += 1;
        let n_tags = self.tags.len();
        let step = self.step as f64;
        let mut margin = 0.0f64;
        for t in 0..gold.len() {
            if gold[t] != pred[t] {
                let grow = bk.row(t, gold[t]);
                let prow = bk.row(t, pred[t]);
                for (&bg, &bp) in grow.iter().zip(prow) {
                    margin += f64::from(self.w[bp as usize] - self.w[bg as usize]);
                    self.w[bg as usize] += 1.0;
                    self.w_acc[bg as usize] += step;
                    self.w[bp as usize] -= 1.0;
                    self.w_acc[bp as usize] -= step;
                }
            }
            if t > 0 && (gold[t] != pred[t] || gold[t - 1] != pred[t - 1]) {
                let ig = gold[t - 1] as usize * n_tags + gold[t] as usize;
                let ip = pred[t - 1] as usize * n_tags + pred[t] as usize;
                margin += f64::from(self.trans[ip] - self.trans[ig]);
                self.trans[ig] += 1.0;
                self.trans_acc[ig] += step;
                self.trans[ip] -= 1.0;
                self.trans_acc[ip] -= step;
            }
        }
        margin
    }

    /// Resets the trainable state to its untrained zero point, keeping the
    /// tag set, lexicon, and any interned feature caches held by the
    /// caller. Used by the divergence-recovery restart.
    fn reset_weights(&mut self) {
        self.w.fill(0.0);
        self.w_acc.fill(0.0);
        self.trans.fill(0.0);
        self.trans_acc.fill(0.0);
        self.step = 0;
    }

    /// Replaces non-finite weights and accumulators with zero — the
    /// last-resort repair once the divergence retry budget is exhausted,
    /// keeping the run alive (degraded, counted, logged) instead of
    /// propagating `NaN` into every later score.
    fn scrub_non_finite(&mut self) {
        for v in self.w.iter_mut().chain(self.trans.iter_mut()) {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        for v in self.w_acc.iter_mut().chain(self.trans_acc.iter_mut()) {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
    }

    /// Trains on a plain document list: every epoch visits every document
    /// once (shuffled). See [`Extractor::train_mixed`] for the
    /// originals-plus-synthetics protocol. Applies lazy weight averaging
    /// at the end; the extractor cannot be trained further afterwards.
    pub fn train(&mut self, docs: &[&Document], cfg: &TrainConfig) {
        self.train_mixed(docs, &[], cfg);
    }

    /// Trains with the update-equalized mixing protocol described on
    /// [`TrainConfig`].
    pub fn train_mixed(
        &mut self,
        originals: &[&Document],
        synthetics: &[&Document],
        cfg: &TrainConfig,
    ) {
        assert!(!self.averaged, "extractor already finalized");
        let n = originals.len();
        if n == 0 {
            self.finalize_average();
            return;
        }
        // Observability: per-epoch wall time plus decode/update/cache
        // counters, batched into one registry call per training run so
        // the hot loop never takes the registry lock. `timing` gates the
        // per-epoch clock reads; the local `u64` adds are free.
        let timing = fieldswap_obs::metrics_enabled();
        let mut obs_decodes = 0u64;
        let mut obs_updates = 0u64;
        let mut obs_synth_feat_hits = 0u64;
        let mut obs_synth_feat_misses = 0u64;
        // Originals are visited every epoch: intern their bucket tables
        // once up front (the feature lists themselves are no longer needed
        // after interning).
        let mut buckets_orig: Vec<DocBuckets> = Vec::with_capacity(n);
        let mut golds_orig: Vec<Vec<TagId>> = Vec::with_capacity(n);
        for d in originals {
            let f = extract(d, &self.lexicon);
            let g = self.tags.encode(d);
            let mut bk = DocBuckets::default();
            self.fill_buckets(&f, Some(&g), &mut bk);
            buckets_orig.push(bk);
            golds_orig.push(g);
        }
        // Synthetic features are extracted lazily per epoch slice and
        // cached, so huge synthetic pools cost only what is visited. Their
        // bucket tables are NOT cached (a table is ~n_tags x the feature
        // list in size, too big for thousand-document pools); each visit
        // re-interns into a reusable per-slot scratch table.
        let mut feats_synth: Vec<Option<SynthFeats>> =
            (0..synthetics.len()).map(|_| None).collect();
        let per_epoch_synths = if synthetics.is_empty() {
            0
        } else {
            ((cfg.synth_ratio * n as f32).round() as usize)
                .max(1)
                .min(synthetics.len().max(1) * cfg.epochs)
        };
        let extra_repeats = if synthetics.is_empty() {
            // Baseline equalization: the same number of updates via
            // repeated passes over the originals.
            cfg.synth_ratio.round() as usize
        } else {
            0
        };

        // Per-epoch buffers, reused: the plan is rebuilt (same contents,
        // same shuffle draws) per attempt.
        let mut plan: Vec<(bool, usize)> =
            Vec::with_capacity(n * (1 + extra_repeats) + per_epoch_synths);

        // Decode workers. With `train_jobs <= 1` the pool is threadless
        // and every closure below runs inline on this thread — the
        // serial reference path the parallel path must match bit for
        // bit. One slot per window position, each owning its scratch;
        // grow-only, so a warm window decodes without allocating.
        let pool = WorkerPool::new(cfg.train_jobs);
        let mut slots: Vec<Mutex<TrainSlot>> = Vec::new();
        // Reusable slots for parallel synthetic feature extraction on
        // cache misses, plus the per-window list of missing indices.
        let mut feat_slots: Vec<Mutex<Option<SynthFeats>>> = Vec::new();
        let mut uncached: Vec<usize> = Vec::new();
        // Per-worker decode counts (utilization), flushed to the metrics
        // registry once at the end of the run.
        let worker_docs: Vec<AtomicU64> = (0..pool.jobs()).map(|_| AtomicU64::new(0)).collect();
        let mut obs_batches = 0u64;
        let mut obs_replays = 0u64;
        // Scratch for the merge phase: re-decodes of stale speculations,
        // plus a bucket table for the one-thread reference path.
        let mut replay_vit = ViterbiScratch::default();
        let mut serial_bk = DocBuckets::default();

        // Divergence recovery (restart-with-replay): when an epoch's loss
        // goes non-finite, reset the weights and replay training from
        // epoch 0 drawing the *same* rng stream, then perturb only the
        // diverged epoch's visiting order with an extra shuffle from a
        // derived recovery seed. A clean run draws zero extra random
        // numbers, so the hardened path is bit-identical to the original
        // trainer. `overrides` maps epoch -> retry attempt count.
        let mut overrides: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        let mut report = TrainReport::default();

        'attempt: loop {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut synth_order: Vec<usize> = (0..synthetics.len()).collect();
            synth_order.shuffle(&mut rng);
            let mut synth_cursor = 0usize;

            for epoch in 0..cfg.epochs {
                let epoch_t0 = if timing {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                // Plan: (is_synth, index) entries.
                plan.clear();
                for r in 0..=extra_repeats {
                    let _ = r;
                    for i in 0..n {
                        plan.push((false, i));
                    }
                }
                for _ in 0..per_epoch_synths {
                    plan.push((true, synth_order[synth_cursor % synth_order.len().max(1)]));
                    synth_cursor += 1;
                }
                plan.shuffle(&mut rng);
                if let Some(&attempt) = overrides.get(&epoch) {
                    // This epoch diverged before: perturb its visiting
                    // order (main stream above already advanced normally,
                    // keeping every other epoch's draws untouched).
                    let mut recovery =
                        StdRng::seed_from_u64(recovery_seed(cfg.seed, epoch as u64, attempt));
                    plan.shuffle(&mut recovery);
                }
                obs_decodes += plan.len() as u64;
                let mut epoch_loss = 0.0f64;
                let mut epoch_merge_ms = 0.0f64;
                for window in plan.chunks(TRAIN_BATCH) {
                    obs_batches += 1;
                    // Resolve synthetic feature-cache misses for this
                    // window up front (fanned out when misses cluster):
                    // the decode phase reads the cache immutably from
                    // every worker.
                    uncached.clear();
                    for &(is_synth, i) in window {
                        if !is_synth {
                            continue;
                        }
                        if feats_synth[i].is_some() || uncached.contains(&i) {
                            obs_synth_feat_hits += 1;
                        } else {
                            uncached.push(i);
                            obs_synth_feat_misses += 1;
                        }
                    }
                    if !uncached.is_empty() {
                        while feat_slots.len() < uncached.len() {
                            feat_slots.push(Mutex::new(None));
                        }
                        let this: &Extractor = self;
                        let uncached_ref = &uncached;
                        pool.fill_slots(&feat_slots[..uncached.len()], |_, j| {
                            let d = synthetics[uncached_ref[j]];
                            (extract(d, &this.lexicon), this.tags.encode(d))
                        });
                        for (j, &i) in uncached.iter().enumerate() {
                            feats_synth[i] = feat_slots[j].lock().expect("slot poisoned").take();
                        }
                    }
                    // One-thread reference path: decode with the current
                    // weights and update immediately — the textbook
                    // online perceptron. The speculative path below
                    // reproduces exactly this update sequence; running
                    // it on one thread would just decode twice.
                    if pool.jobs() <= 1 {
                        let merge_t0 = timing.then(std::time::Instant::now);
                        worker_docs[0].fetch_add(window.len() as u64, Ordering::Relaxed);
                        for &(is_synth, i) in window {
                            let (bk, gold): (&DocBuckets, &[TagId]) = if is_synth {
                                let (f, g) = feats_synth[i].as_ref().expect("cache resolved above");
                                self.fill_buckets(f, Some(g), &mut serial_bk);
                                (&serial_bk, g)
                            } else {
                                (&buckets_orig[i], &golds_orig[i])
                            };
                            self.viterbi_into(bk, &mut replay_vit);
                            if replay_vit.tags != gold {
                                let pred = std::mem::take(&mut replay_vit.tags);
                                epoch_loss += self.update(bk, gold, &pred);
                                replay_vit.tags = pred;
                                obs_updates += 1;
                            }
                        }
                        if let Some(t0) = merge_t0 {
                            epoch_merge_ms += t0.elapsed().as_secs_f64() * 1e3;
                        }
                        continue;
                    }
                    // Decode phase: every entry of the window is decoded
                    // against the weights as they stood at window start,
                    // on whichever worker claims it first.
                    while slots.len() < window.len() {
                        slots.push(Mutex::new(TrainSlot::default()));
                    }
                    {
                        let this: &Extractor = self;
                        let feats_synth_ref = &feats_synth;
                        let buckets_ref = &buckets_orig;
                        let golds_ref = &golds_orig;
                        let worker_docs_ref = &worker_docs;
                        pool.for_each_slot(&slots[..window.len()], |worker, item, slot| {
                            worker_docs_ref[worker].fetch_add(1, Ordering::Relaxed);
                            let (is_synth, i) = window[item];
                            let gold: &[TagId] = if is_synth {
                                let (f, g) =
                                    feats_synth_ref[i].as_ref().expect("cache resolved above");
                                this.fill_buckets(f, Some(g), &mut slot.bk);
                                this.viterbi_into(&slot.bk, &mut slot.vit);
                                g
                            } else {
                                this.viterbi_into(&buckets_ref[i], &mut slot.vit);
                                &golds_ref[i]
                            };
                            slot.mispredicted = slot.vit.tags != gold;
                        });
                    }
                    // Merge phase, serial and in plan order. A window's
                    // speculative decode is valid exactly until the
                    // first weight update inside the window; from that
                    // point on each document is re-decoded with the
                    // current weights (bucket tables are
                    // weight-independent, so only the Viterbi sweep
                    // reruns). The applied update sequence is therefore
                    // identical to the one-thread reference path above
                    // for every jobs setting.
                    let merge_t0 = timing.then(std::time::Instant::now);
                    let mut dirty = false;
                    for (item, &(is_synth, i)) in window.iter().enumerate() {
                        let slot = slots[item].get_mut().expect("slot poisoned");
                        let (bk, gold): (&DocBuckets, &[TagId]) = if is_synth {
                            let (_, g) = feats_synth[i].as_ref().expect("cache resolved above");
                            (&slot.bk, g)
                        } else {
                            (&buckets_orig[i], &golds_orig[i])
                        };
                        if dirty {
                            obs_replays += 1;
                            self.viterbi_into(bk, &mut replay_vit);
                            if replay_vit.tags != gold {
                                let pred = std::mem::take(&mut replay_vit.tags);
                                epoch_loss += self.update(bk, gold, &pred);
                                replay_vit.tags = pred;
                                obs_updates += 1;
                            }
                        } else if slot.mispredicted {
                            let pred = std::mem::take(&mut slot.vit.tags);
                            epoch_loss += self.update(bk, gold, &pred);
                            slot.vit.tags = pred;
                            obs_updates += 1;
                            dirty = true;
                        }
                    }
                    if let Some(t0) = merge_t0 {
                        epoch_merge_ms += t0.elapsed().as_secs_f64() * 1e3;
                    }
                }
                if timing {
                    fieldswap_obs::observe("fieldswap_train_merge_ms", epoch_merge_ms);
                }
                if epoch < 64
                    && (cfg.inject_nan_epoch_mask >> epoch) & 1 == 1
                    && !overrides.contains_key(&epoch)
                {
                    epoch_loss = f64::NAN;
                }
                if let Some(t0) = epoch_t0 {
                    fieldswap_obs::observe(
                        "fieldswap_train_epoch_ms",
                        t0.elapsed().as_secs_f64() * 1e3,
                    );
                }
                report.epochs_run += 1;
                report.final_loss = epoch_loss;
                if !epoch_loss.is_finite() {
                    report.divergences += 1;
                    fieldswap_obs::counter_add("fieldswap_train_divergences_total", 1);
                    if report.retries >= cfg.max_divergence_retries {
                        // Retry budget spent: repair in place and keep
                        // going so the surrounding grid completes.
                        report.exhausted = true;
                        report.final_loss = 0.0;
                        self.scrub_non_finite();
                        fieldswap_obs::counter_add("fieldswap_train_divergence_exhausted_total", 1);
                        continue;
                    }
                    report.retries += 1;
                    *overrides.entry(epoch).or_insert(0) += 1;
                    fieldswap_obs::counter_add("fieldswap_train_divergence_retries_total", 1);
                    self.reset_weights();
                    continue 'attempt;
                }
            }
            break;
        }
        self.train_report = report;
        if timing {
            fieldswap_obs::counter_add("fieldswap_train_epochs_total", cfg.epochs as u64);
            fieldswap_obs::counter_add("fieldswap_train_decodes_total", obs_decodes);
            fieldswap_obs::counter_add("fieldswap_train_updates_total", obs_updates);
            fieldswap_obs::counter_add(
                "fieldswap_synth_feature_cache_hits_total",
                obs_synth_feat_hits,
            );
            fieldswap_obs::counter_add(
                "fieldswap_synth_feature_cache_misses_total",
                obs_synth_feat_misses,
            );
            fieldswap_obs::counter_add("fieldswap_train_batches_total", obs_batches);
            fieldswap_obs::counter_add("fieldswap_train_replayed_decodes_total", obs_replays);
            for (w, docs) in worker_docs.iter().enumerate() {
                fieldswap_obs::counter_add(
                    &format!("fieldswap_train_worker_docs_total{{worker=\"{w}\"}}"),
                    docs.load(Ordering::Relaxed),
                );
            }
        }
        self.finalize_average();
    }

    /// Applies the perceptron averaging: `w_avg = w - acc / (step + 1)`.
    fn finalize_average(&mut self) {
        let denom = (self.step + 1) as f64;
        for (w, acc) in self.w.iter_mut().zip(&self.w_acc) {
            *w -= (acc / denom) as f32;
        }
        for (w, acc) in self.trans.iter_mut().zip(&self.trans_acc) {
            *w -= (acc / denom) as f32;
        }
        self.averaged = true;
    }

    /// Extracts entity spans from a document, applying the schema
    /// constraint that each field keeps only its best-scoring instance
    /// (fields in all five paper domains are single-instance).
    pub fn predict(&self, doc: &Document) -> Vec<EntitySpan> {
        let mut scratch = PredictScratch::default();
        self.predict_with(doc, &mut scratch)
    }

    /// Like [`Extractor::predict`], but reuses caller-held working memory:
    /// batch callers (evaluation sweeps, benchmark loops) keep one
    /// [`PredictScratch`] and avoid re-allocating the bucket table and
    /// Viterbi buffers per document.
    pub fn predict_with(&self, doc: &Document, scratch: &mut PredictScratch) -> Vec<EntitySpan> {
        let feats = extract(doc, &self.lexicon);
        self.fill_buckets(&feats, None, &mut scratch.buckets);
        self.viterbi_into(&scratch.buckets, &mut scratch.viterbi);
        let spans = self.tags.decode(&scratch.viterbi.tags);
        self.apply_schema_constraints(&scratch.buckets, spans)
    }

    /// Raw (unconstrained) prediction, for diagnostics and ablations.
    pub fn predict_unconstrained(&self, doc: &Document) -> Vec<EntitySpan> {
        let feats = extract(doc, &self.lexicon);
        let mut scratch = PredictScratch::default();
        self.fill_buckets(&feats, None, &mut scratch.buckets);
        self.viterbi_into(&scratch.buckets, &mut scratch.viterbi);
        self.tags.decode(&scratch.viterbi.tags)
    }

    fn apply_schema_constraints(&self, bk: &DocBuckets, spans: Vec<EntitySpan>) -> Vec<EntitySpan> {
        // Score each span by its mean emission margin and keep the best
        // span per field. Spans come from decoded Viterbi output, so every
        // (position, tag) pair passed the gate and has a filled bucket row.
        let mut best: std::collections::HashMap<u16, (f32, EntitySpan)> =
            std::collections::HashMap::new();
        for s in spans {
            let mut score = 0.0f32;
            for t in s.start..s.end {
                let part = match (t == s.start, t + 1 == s.end) {
                    (true, true) => 3,  // S
                    (true, false) => 0, // B
                    (false, true) => 2, // E
                    (false, false) => 1,
                };
                let tag = self.tags.tag(s.field, part);
                score += self.emission_bk(bk, t as usize, tag);
            }
            score /= (s.end - s.start) as f32;
            match best.get(&s.field) {
                Some((b, _)) if *b >= score => {}
                _ => {
                    best.insert(s.field, (score, s));
                }
            }
        }
        let mut out: Vec<EntitySpan> = best.into_values().map(|(_, s)| s).collect();
        out.sort_by_key(|s| (s.start, s.end));
        out
    }

    /// Decomposes a finalized extractor into its serializable parts.
    ///
    /// # Panics
    /// Panics when training has not been finalized.
    pub fn to_parts(&self) -> crate::serialize::ModelParts {
        assert!(self.averaged, "serialize only finalized extractors");
        crate::serialize::ModelParts {
            n_fields: self.tags.n_fields(),
            field_types: self
                .field_types
                .iter()
                .map(|t| BaseType::ALL.iter().position(|x| x == t).unwrap() as u8)
                .collect(),
            weights: self.w.clone(),
            transitions: self.trans.clone(),
            lexicon_docs: self.lexicon.n_docs(),
            lexicon_entries: self.lexicon.entries(),
        }
    }

    /// Reassembles an extractor from serialized parts. The result is
    /// finalized (ready for prediction, not further training).
    pub fn from_parts(parts: crate::serialize::ModelParts) -> Extractor {
        let tags = TagSet::new(parts.n_fields);
        let n_tags = tags.len();
        Extractor {
            tags,
            field_types: parts
                .field_types
                .iter()
                .map(|&t| BaseType::ALL[t as usize])
                .collect(),
            w: parts.weights,
            w_acc: Vec::new(),
            trans: parts.transitions,
            trans_acc: vec![0.0; n_tags * n_tags],
            step: 0,
            averaged: true,
            lexicon: crate::serialize::lexicon_from_entries(
                parts.lexicon_docs,
                parts.lexicon_entries,
            ),
            train_report: TrainReport::default(),
        }
    }

    /// Convenience: trains a fresh extractor on a corpus plus synthetic
    /// documents.
    pub fn train_on(
        schema: &Schema,
        lexicon: Lexicon,
        originals: &Corpus,
        synthetics: &[Document],
        cfg: &TrainConfig,
    ) -> Extractor {
        let mut ex = Extractor::new(schema, lexicon);
        let orig: Vec<&Document> = originals.documents.iter().collect();
        let synth: Vec<&Document> = synthetics.iter().collect();
        ex.train_mixed(&orig, &synth, cfg);
        ex
    }

    /// On-the-fly emission score — the naive counterpart of
    /// [`Extractor::emission_bk`], retained for the reference decoder.
    #[cfg(test)]
    fn emission(&self, features: &[u64], tag: TagId) -> f32 {
        features.iter().map(|&f| self.w[bucket(f, tag)]).sum()
    }

    /// The pre-optimization Viterbi: nested backpointer vectors, fresh
    /// allocations per step, hashing on the fly. Kept as the oracle the
    /// property tests compare the scratch-buffer decoder against.
    #[cfg(test)]
    fn viterbi_reference(&self, feats: &DocFeatures) -> Vec<TagId> {
        let n = feats.features.len();
        let n_tags = self.tags.len();
        if n == 0 {
            return Vec::new();
        }
        let mut score = vec![NEG; n_tags];
        let mut back: Vec<Vec<u16>> = Vec::with_capacity(n);

        let emis = |t: usize, tag: TagId| -> f32 {
            if self.tag_allowed(tag, feats.gates[t]) {
                self.emission(&feats.features[t], tag)
            } else {
                NEG
            }
        };

        for tag in 0..n_tags as u16 {
            if self.tags.can_start(tag) {
                score[tag as usize] = emis(0, tag);
            }
        }
        back.push(vec![0; n_tags]);

        for t in 1..n {
            let mut next = vec![NEG; n_tags];
            let mut bp = vec![0u16; n_tags];
            for tag in 0..n_tags as u16 {
                let e = emis(t, tag);
                if e <= NEG {
                    continue;
                }
                let mut best = NEG;
                let mut best_prev = 0u16;
                for &prev in self.tags.prev_allowed(tag) {
                    let s = score[prev as usize];
                    if s <= NEG {
                        continue;
                    }
                    let cand = s + self.trans[prev as usize * n_tags + tag as usize];
                    if cand > best {
                        best = cand;
                        best_prev = prev;
                    }
                }
                if best > NEG {
                    next[tag as usize] = best + e;
                    bp[tag as usize] = best_prev;
                }
            }
            score = next;
            back.push(bp);
        }

        let mut best_tag = 0u16;
        let mut best = NEG;
        for tag in 0..n_tags as u16 {
            if self.tags.can_end(tag) && score[tag as usize] > best {
                best = score[tag as usize];
                best_tag = tag;
            }
        }
        let mut tags = vec![0u16; n];
        tags[n - 1] = best_tag;
        for t in (1..n).rev() {
            tags[t - 1] = back[t][tags[t] as usize];
        }
        tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};

    fn exact_match_rate(ex: &Extractor, test: &Corpus) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for d in &test.documents {
            let pred = ex.predict(d);
            for a in &d.annotations {
                total += 1;
                if pred.contains(a) {
                    correct += 1;
                }
            }
        }
        correct as f64 / total.max(1) as f64
    }

    #[test]
    fn learns_invoices_with_enough_data() {
        let train = generate(Domain::Invoices, 1, 120);
        let test = generate(Domain::Invoices, 2, 30);
        let lex = Lexicon::pretrain(&train.documents);
        let ex = Extractor::train_on(
            &train.schema,
            lex,
            &train,
            &[],
            &TrainConfig {
                epochs: 5,
                synth_ratio: 2.0,
                seed: 1,
                ..TrainConfig::default()
            },
        );
        let rate = exact_match_rate(&ex, &test);
        assert!(rate > 0.5, "exact-match rate too low: {rate}");
    }

    #[test]
    fn small_training_set_underperforms_large() {
        let pool = generate(Domain::Earnings, 3, 150);
        let test = generate(Domain::Earnings, 4, 30);
        let lex = Lexicon::pretrain(&pool.documents);
        let small = Corpus::new(pool.schema.clone(), pool.documents[..10].to_vec());
        let cfg = TrainConfig {
            epochs: 5,
            synth_ratio: 0.0,
            seed: 2,
            ..TrainConfig::default()
        };
        let ex_small = Extractor::train_on(&small.schema, lex.clone(), &small, &[], &cfg);
        let ex_large = Extractor::train_on(&pool.schema, lex, &pool, &[], &cfg);
        let r_small = exact_match_rate(&ex_small, &test);
        let r_large = exact_match_rate(&ex_large, &test);
        assert!(
            r_large > r_small,
            "150 docs ({r_large}) should beat 10 docs ({r_small})"
        );
    }

    #[test]
    fn predictions_are_valid_spans() {
        let train = generate(Domain::Fara, 5, 40);
        let lex = Lexicon::empty();
        let ex = Extractor::train_on(&train.schema, lex, &train, &[], &TrainConfig::tiny());
        for d in &train.documents[..10] {
            let pred = ex.predict(d);
            for s in &pred {
                assert!(s.end <= d.tokens.len() as u32);
                assert!((s.field as usize) < train.schema.len());
            }
            // Constraint: at most one span per field.
            let mut fields: Vec<u16> = pred.iter().map(|s| s.field).collect();
            fields.sort_unstable();
            let before = fields.len();
            fields.dedup();
            assert_eq!(fields.len(), before, "duplicate field instances");
        }
    }

    #[test]
    fn gating_blocks_impossible_tags() {
        let train = generate(Domain::Earnings, 7, 60);
        let lex = Lexicon::empty();
        let ex = Extractor::train_on(&train.schema, lex, &train, &[], &TrainConfig::tiny());
        let money_fields: Vec<u16> = train
            .schema
            .iter()
            .filter(|(_, f)| f.base_type == BaseType::Money)
            .map(|(id, _)| id)
            .collect();
        for d in &train.documents[..10] {
            for s in ex.predict(d) {
                if money_fields.contains(&s.field) {
                    // Every predicted money span must be numeric-ish.
                    for t in s.start..s.end {
                        let text = &d.tokens[t as usize].text;
                        assert!(
                            gate_allows(crate::features::type_gate(text), BaseType::Money),
                            "money field predicted over non-money token {text:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_training() {
        let train = generate(Domain::Fara, 9, 20);
        let run = || {
            let ex = Extractor::train_on(
                &train.schema,
                Lexicon::empty(),
                &train,
                &[],
                &TrainConfig::tiny(),
            );
            ex.predict(&train.documents[0])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clean_training_reports_no_divergence() {
        let train = generate(Domain::Fara, 9, 20);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let r = ex.train_report();
        assert_eq!(r.epochs_run, 3);
        assert_eq!(r.divergences, 0);
        assert_eq!(r.retries, 0);
        assert!(!r.exhausted);
        assert!(r.final_loss.is_finite());
    }

    #[test]
    fn injected_divergence_recovers_deterministically() {
        let train = generate(Domain::Fara, 21, 20);
        let cfg = TrainConfig {
            inject_nan_epoch_mask: 0b10, // epoch 1 diverges on first attempt
            ..TrainConfig::tiny()
        };
        let run = || {
            let ex = Extractor::train_on(&train.schema, Lexicon::empty(), &train, &[], &cfg);
            let report = *ex.train_report();
            (report, ex.predict(&train.documents[0]))
        };
        let (report, pred) = run();
        assert_eq!(report.divergences, 1);
        assert_eq!(report.retries, 1);
        assert!(!report.exhausted);
        // Restart replays epochs 0 and 1, then runs 2: 3 + 1 extra.
        assert_eq!(report.epochs_run, 3 + 2);
        assert!(report.final_loss.is_finite());
        // The whole recovery path is seeded: a second run is identical.
        let (report2, pred2) = run();
        assert_eq!(report, report2);
        assert_eq!(pred, pred2);
        // The recovered model still works (produces valid spans).
        for s in &pred {
            assert!(s.end <= train.documents[0].tokens.len() as u32);
        }
    }

    #[test]
    fn exhausted_divergence_budget_is_graceful() {
        let train = generate(Domain::Fara, 22, 15);
        let cfg = TrainConfig {
            inject_nan_epoch_mask: 0b111, // every epoch's first attempt diverges
            max_divergence_retries: 1,
            ..TrainConfig::tiny()
        };
        let ex = Extractor::train_on(&train.schema, Lexicon::empty(), &train, &[], &cfg);
        let r = *ex.train_report();
        assert_eq!(r.retries, 1);
        assert!(r.exhausted);
        assert!(r.divergences >= 2);
        // No panic, and predictions contain no poison.
        let pred = ex.predict(&train.documents[0]);
        for s in &pred {
            assert!(s.end <= train.documents[0].tokens.len() as u32);
        }
    }

    #[test]
    fn divergence_guard_is_inert_on_clean_runs() {
        // The hardened trainer must be draw-for-draw identical to a run
        // with a huge retry budget (no recovery rng is consumed unless a
        // divergence actually happens).
        let train = generate(Domain::Earnings, 23, 15);
        let base = TrainConfig::tiny();
        let lots = TrainConfig {
            max_divergence_retries: 1000,
            ..TrainConfig::tiny()
        };
        let run = |cfg: &TrainConfig| {
            let ex = Extractor::train_on(&train.schema, Lexicon::empty(), &train, &[], cfg);
            train
                .documents
                .iter()
                .map(|d| ex.predict(d))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&base), run(&lots));
    }

    #[test]
    fn empty_document_predicts_nothing() {
        let train = generate(Domain::Fara, 9, 10);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let empty = Document {
            id: "empty".into(),
            ..Default::default()
        };
        assert!(ex.predict(&empty).is_empty());
    }

    #[test]
    fn predict_with_reused_scratch_matches_fresh() {
        let train = generate(Domain::Earnings, 17, 30);
        let ex = Extractor::train_on(
            &train.schema,
            Lexicon::empty(),
            &train,
            &[],
            &TrainConfig::tiny(),
        );
        let mut scratch = PredictScratch::default();
        for d in &train.documents {
            assert_eq!(ex.predict_with(d, &mut scratch), ex.predict(d));
        }
    }

    #[test]
    #[should_panic(expected = "already finalized")]
    fn double_train_panics() {
        let train = generate(Domain::Fara, 9, 5);
        let mut ex = Extractor::new(&train.schema, Lexicon::empty());
        let docs: Vec<&Document> = train.documents.iter().collect();
        ex.train(&docs, &TrainConfig::tiny());
        ex.train(&docs, &TrainConfig::tiny());
    }

    #[test]
    fn proptest_scratch_viterbi_matches_reference() {
        // The scratch-buffer decoder must reproduce the naive reference
        // decoder exactly — same tags, bit for bit — across random
        // weights, features, and gate masks, including when one scratch is
        // reused across documents.
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let schema = generate(Domain::Earnings, 1, 1).schema;
        let mut runner = TestRunner::new(Config::with_cases(48));
        runner
            .run(
                &(
                    // Two documents per case (scratch reuse), each up to 12
                    // tokens with up to 6 features.
                    proptest::collection::vec(
                        proptest::collection::vec(
                            (proptest::collection::vec(0u64..=u64::MAX, 1..6), 0u8..=255),
                            0..12,
                        ),
                        2,
                    ),
                    proptest::collection::vec(-2.0f32..2.0, 64),
                    proptest::collection::vec(-1.0f32..1.0, 32),
                ),
                |(docs, wvals, tvals)| {
                    let mut ex = Extractor::new(&schema, Lexicon::empty());
                    for (i, w) in ex.w.iter_mut().enumerate() {
                        *w = wvals[i % wvals.len()];
                    }
                    for (i, t) in ex.trans.iter_mut().enumerate() {
                        *t = tvals[i % tvals.len()];
                    }
                    let mut bk = DocBuckets::default();
                    let mut sc = ViterbiScratch::default();
                    for tokens in &docs {
                        let feats = DocFeatures {
                            features: tokens.iter().map(|(fs, _)| fs.clone()).collect(),
                            gates: tokens.iter().map(|&(_, g)| g).collect(),
                        };
                        let reference = ex.viterbi_reference(&feats);
                        ex.fill_buckets(&feats, None, &mut bk);
                        ex.viterbi_into(&bk, &mut sc);
                        prop_assert_eq!(&sc.tags, &reference);
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn augmentation_with_oracle_phrases_helps_rare_field() {
        // End-to-end sanity of the FieldSwap premise on a tiny scale:
        // with 15 training docs, rare fields have few examples; swapping
        // in type-to-type synthetics should not hurt and usually helps.
        use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
        let pool = generate(Domain::Earnings, 13, 15);
        let test = generate(Domain::Earnings, 14, 40);
        let lex = Lexicon::pretrain(&pool.documents);
        let mut config = FieldSwapConfig::new(pool.schema.len());
        for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
            let id = pool.schema.field_id(&name).unwrap();
            config.set_phrases(id, phrases);
        }
        config.set_pairs(PairStrategy::TypeToType.build(&pool.schema, &config));
        let (synths, stats) = augment_corpus(&pool, &config);
        assert!(stats.generated > 0);
        let cfg = TrainConfig {
            epochs: 4,
            synth_ratio: 2.0,
            seed: 3,
            ..TrainConfig::default()
        };
        let base = Extractor::train_on(&pool.schema, lex.clone(), &pool, &[], &cfg);
        let aug = Extractor::train_on(&pool.schema, lex, &pool, &synths, &cfg);
        let r_base = exact_match_rate(&base, &test);
        let r_aug = exact_match_rate(&aug, &test);
        // Allow slack — this is a sanity check, not the experiment.
        assert!(
            r_aug + 0.05 >= r_base,
            "augmentation should be ~neutral or better: base {r_base} aug {r_aug}"
        );
    }

    #[test]
    fn parallel_training_is_bitwise_identical_to_serial() {
        // The whole determinism contract: `train_jobs` may only change
        // wall-clock time. Compare the *serialized* models — weights,
        // transitions, lexicon, everything — bit for bit.
        let train = generate(Domain::Earnings, 31, 20);
        let synths = generate(Domain::Earnings, 32, 15).documents;
        let run = |jobs: usize| {
            let ex = Extractor::train_on(
                &train.schema,
                Lexicon::pretrain(&train.documents),
                &train,
                &synths,
                &TrainConfig {
                    train_jobs: jobs,
                    ..TrainConfig::tiny()
                },
            );
            (*ex.train_report(), ex.to_bytes().unwrap())
        };
        let serial = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(serial, run(jobs), "train_jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn parallel_training_identity_survives_divergence_recovery() {
        // The restart-with-replay recovery path re-shuffles epochs with
        // override seeds; parallel decode must not perturb any of it.
        let train = generate(Domain::Fara, 33, 18);
        let run = |jobs: usize| {
            let cfg = TrainConfig {
                inject_nan_epoch_mask: 0b10,
                train_jobs: jobs,
                ..TrainConfig::tiny()
            };
            let ex = Extractor::train_on(&train.schema, Lexicon::empty(), &train, &[], &cfg);
            (*ex.train_report(), ex.to_bytes().unwrap())
        };
        let (report1, bytes1) = run(1);
        assert_eq!(report1.retries, 1);
        assert_eq!(report1.epochs_run, 3 + 2);
        let (report4, bytes4) = run(4);
        assert_eq!(report1, report4);
        assert_eq!(bytes1, bytes4);
    }

    #[test]
    fn proptest_train_jobs_invariance() {
        // Random corpora, epoch counts, synth ratios, seeds, and thread
        // counts: the trained model never depends on `train_jobs`.
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let pool = generate(Domain::Fara, 41, 24);
        let synth_pool = generate(Domain::Fara, 42, 12).documents;
        let mut runner = TestRunner::new(Config::with_cases(12));
        runner
            .run(
                &(
                    2usize..=8,  // jobs
                    1usize..=3,  // epochs
                    0u8..=4,     // synth_ratio halves (0.0..=2.0)
                    0u64..=3,    // seed
                    3usize..=24, // corpus size
                ),
                |(jobs, epochs, ratio_halves, seed, n_docs)| {
                    let train = Corpus::new(pool.schema.clone(), pool.documents[..n_docs].to_vec());
                    let run = |train_jobs: usize| {
                        let ex = Extractor::train_on(
                            &train.schema,
                            Lexicon::empty(),
                            &train,
                            &synth_pool,
                            &TrainConfig {
                                epochs,
                                synth_ratio: ratio_halves as f32 * 0.5,
                                seed,
                                train_jobs,
                                ..TrainConfig::default()
                            },
                        );
                        ex.to_bytes().unwrap()
                    };
                    prop_assert_eq!(run(1), run(jobs));
                    Ok(())
                },
            )
            .unwrap();
    }
}
