//! Unsupervised pre-training: a corpus lexicon of token document
//! frequencies.
//!
//! The paper pre-trains its sequence labeler on ~30k unlabeled
//! out-of-domain documents before fine-tuning. The property that transfer
//! buys a form extractor is a prior over which tokens are *template*
//! vocabulary (stable across documents — key phrases, section headers) and
//! which are *values* (variable — names, amounts, dates). This module
//! reproduces that prior directly: an unlabeled corpus pass computes each
//! normalized token's document frequency, which becomes a bucketed feature
//! at fine-tuning time. High-DF tokens near a candidate are phrase-like
//! anchors; low-DF tokens are value-like.

use fieldswap_docmodel::Document;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// A fast, non-keyed string hasher (chunked FNV-1a) for the DF map. The
/// lexicon holds at most a few thousand corpus tokens and is queried twice
/// per token on the inference hot path, where SipHash is measurable
/// overhead; hash-flooding is not a concern for this table.
#[derive(Debug, Clone, Copy, Default)]
struct FastState;

impl BuildHasher for FastState {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

#[derive(Debug)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h = (h ^ v).wrapping_mul(PRIME);
        }
        for &b in chunks.remainder() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        // Final avalanche so low bits (the table index) depend on every
        // input byte even after the chunked folding.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

/// A document-frequency lexicon learned from unlabeled documents.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    df: HashMap<String, u32, FastState>,
    n_docs: u32,
}

fn norm(text: &str) -> String {
    text.trim_matches(|c: char| c.is_ascii_punctuation())
        .to_lowercase()
}

/// Allocation-free [`norm`]: writes the normalized form of `text` into
/// `out` (cleared first). ASCII input — the overwhelmingly common case —
/// lowercases byte-wise into the reused buffer; non-ASCII input falls back
/// to `str::to_lowercase` so the result is identical to [`norm`] for every
/// input (including locale-special cases like the Greek final sigma).
pub(crate) fn norm_into(text: &str, out: &mut String) {
    out.clear();
    let trimmed = text.trim_matches(|c: char| c.is_ascii_punctuation());
    if trimmed.is_ascii() {
        out.extend(trimmed.chars().map(|c| c.to_ascii_lowercase()));
    } else {
        out.push_str(&trimmed.to_lowercase());
    }
}

impl Lexicon {
    /// An empty lexicon (all tokens unknown — DF bucket 0).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Learns document frequencies from an unlabeled corpus. Numeric-ish
    /// tokens are skipped — they are values by construction.
    pub fn pretrain<'a>(docs: impl IntoIterator<Item = &'a Document>) -> Self {
        let mut df: HashMap<String, u32, FastState> = HashMap::default();
        let mut n_docs = 0u32;
        for doc in docs {
            n_docs += 1;
            let mut seen: Vec<String> = Vec::new();
            for t in &doc.tokens {
                if t.text.chars().any(|c| c.is_ascii_digit()) {
                    continue;
                }
                let k = norm(&t.text);
                if k.is_empty() || seen.contains(&k) {
                    continue;
                }
                seen.push(k);
            }
            for k in seen {
                *df.entry(k).or_insert(0) += 1;
            }
        }
        Self { df, n_docs }
    }

    /// Rebuilds a lexicon from serialized `(token, count)` entries.
    pub fn from_raw(n_docs: u32, entries: Vec<(String, u32)>) -> Self {
        Self {
            df: entries.into_iter().collect(),
            n_docs,
        }
    }

    /// The raw `(token, document count)` entries, sorted by token (for
    /// deterministic serialization).
    pub fn entries(&self) -> Vec<(String, u32)> {
        let mut out: Vec<(String, u32)> = self.df.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort();
        out
    }

    /// Number of documents the lexicon was trained on.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Number of distinct tokens tracked.
    pub fn vocab_size(&self) -> usize {
        self.df.len()
    }

    /// The DF bucket for a token, 0..=4:
    /// 0 unknown, 1 rare (<1%), 2 occasional (<10%), 3 common (<50%),
    /// 4 template vocabulary (>=50% of documents).
    pub fn df_bucket(&self, text: &str) -> u8 {
        let mut buf = String::new();
        self.df_bucket_into(text, &mut buf)
    }

    /// [`Lexicon::df_bucket`] with a caller-provided normalization buffer,
    /// so batch feature extraction performs no per-lookup allocation. The
    /// bucket returned is identical to `df_bucket(text)`.
    pub fn df_bucket_into(&self, text: &str, buf: &mut String) -> u8 {
        if self.n_docs == 0 {
            return 0;
        }
        norm_into(text, buf);
        let Some(&c) = self.df.get(buf.as_str()) else {
            return 0;
        };
        let f = f64::from(c) / f64::from(self.n_docs);
        if f >= 0.5 {
            4
        } else if f >= 0.1 {
            3
        } else if f >= 0.01 {
            2
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};

    #[test]
    fn empty_lexicon_returns_zero() {
        let l = Lexicon::empty();
        assert_eq!(l.df_bucket("total"), 0);
        assert_eq!(l.n_docs(), 0);
    }

    #[test]
    fn template_words_get_high_buckets() {
        let corpus = generate(Domain::Invoices, 3, 120);
        let l = Lexicon::pretrain(&corpus.documents);
        assert_eq!(l.n_docs(), 120);
        // "INVOICE" header appears on every document.
        assert_eq!(l.df_bucket("INVOICE"), 4);
        // A random value-ish word should be rarer than the header.
        assert!(l.df_bucket("Alice") < 4);
        // Unknown garbage.
        assert_eq!(l.df_bucket("zzzzqqq"), 0);
    }

    #[test]
    fn numeric_tokens_ignored() {
        let corpus = generate(Domain::Invoices, 5, 40);
        let l = Lexicon::pretrain(&corpus.documents);
        assert_eq!(l.df_bucket("$1,234.56"), 0);
        assert_eq!(l.df_bucket("01/02/2024"), 0);
    }

    #[test]
    fn normalization_case_and_punct() {
        let corpus = generate(Domain::Invoices, 7, 60);
        let l = Lexicon::pretrain(&corpus.documents);
        assert_eq!(l.df_bucket("invoice"), l.df_bucket("INVOICE:"));
    }

    #[test]
    fn norm_into_matches_norm_exactly() {
        let mut buf = String::new();
        for s in [
            "",
            "...",
            "INVOICE:",
            "Total",
            "$1,234.56",
            "a",
            "-x-",
            "ÜBER:",
            "ὈΔΥΣΣΕΎΣ",
            "ΣΊΣΥΦΟΣ",
            "mixedÅscii",
            "..mid.dle..",
        ] {
            norm_into(s, &mut buf);
            assert_eq!(buf, norm(s), "norm_into drift on {s:?}");
        }
    }

    #[test]
    fn df_bucket_into_matches_df_bucket() {
        let corpus = generate(Domain::Invoices, 3, 120);
        let l = Lexicon::pretrain(&corpus.documents);
        let mut buf = String::new();
        for s in ["INVOICE", "invoice:", "Alice", "zzzzqqq", "", "$5.00"] {
            assert_eq!(l.df_bucket_into(s, &mut buf), l.df_bucket(s), "{s:?}");
        }
    }

    #[test]
    fn buckets_are_monotone_in_frequency() {
        let corpus = generate(Domain::Earnings, 9, 100);
        let l = Lexicon::pretrain(&corpus.documents);
        // "Earnings" (every doc header) >= "Overtime" (55-62% of docs)
        // >= "Sales" (rare).
        let high = l.df_bucket("Earnings");
        let mid = l.df_bucket("Overtime");
        let low = l.df_bucket("Sales");
        assert!(high >= mid, "{high} {mid}");
        assert!(mid >= low, "{mid} {low}");
        assert!(high == 4);
    }
}
