//! The candidate-based importance model (paper Fig. 2).
//!
//! For a base-type candidate (e.g. the amount `$3,308.62`), the model:
//!
//! 1. encodes each of the `t` nearest neighboring tokens by concatenating a
//!    hashed **text embedding** and a quantized **relative-position
//!    embedding**, passed through a dense+ReLU projection;
//! 2. contextualizes neighbors with one **self-attention** layer;
//! 3. **max-pools** the contextualized neighbor encodings into a single
//!    *Neighborhood Encoding*;
//! 4. concatenates a **candidate position embedding** and applies a linear
//!    head producing one **binary logit per field** of the training
//!    schema.
//!
//! At transfer time only the intermediate encodings matter: the importance
//! score of neighbor `i` is `cosine(NeighborhoodEncoding, H_i)` where
//! `H_i` is that neighbor's contextualized encoding — exactly the
//! manipulation the paper performs on the model's intermediate outputs.

use crate::features::{cand_pos_id, rel_pos_id, text_id, CAND_POS_VOCAB, POS_VOCAB, TEXT_VOCAB};
use fieldswap_docmodel::{Corpus, Document, NeighborMetric};
use fieldswap_nn::{cosine_similarity, Adam, GradBuffer, Init, Optimizer, ParamStore, Tape};
use fieldswap_parallel::WorkerPool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Gradient minibatch size of the training loop: candidates are processed
/// in fixed windows of this many, each forward/backward running against
/// the parameters as they stood at window start, with the per-candidate
/// gradients then merged in candidate order and applied as **one** Adam
/// step.
///
/// This is a **semantic constant**, not a tuning knob tied to
/// [`ModelConfig::train_jobs`]: the window is the same for every jobs
/// setting, so the gradient reduction tree — and therefore the trained
/// model — is bitwise-identical whether the window runs on one thread or
/// eight.
pub const TRAIN_BATCH: usize = 8;

/// Model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Embedding/encoder width.
    pub dim: usize,
    /// Candidate-position embedding width.
    pub cand_dim: usize,
    /// Number of neighboring tokens per candidate (the paper uses 100).
    pub neighbors: usize,
    /// Training epochs over the pre-training corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Max candidates sampled per document during training (cost control).
    pub max_candidates_per_doc: usize,
    /// Neighbor-selection metric (the paper uses off-axis distance; the
    /// Euclidean variant exists for the ablation bench).
    pub neighbor_metric: NeighborMetric,
    /// Worker threads for the forward/backward phase of each training
    /// window (0 = all cores, 1 = serial). Any value produces
    /// bitwise-identical models; >1 only changes wall-clock time.
    pub train_jobs: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            dim: 24,
            cand_dim: 8,
            neighbors: 100,
            epochs: 2,
            lr: 0.01,
            max_candidates_per_doc: 24,
            neighbor_metric: NeighborMetric::OffAxis,
            train_jobs: 1,
        }
    }
}

impl ModelConfig {
    /// A small, fast profile for unit tests.
    pub fn tiny() -> Self {
        Self {
            dim: 12,
            cand_dim: 4,
            neighbors: 16,
            epochs: 1,
            lr: 0.02,
            max_candidates_per_doc: 8,
            neighbor_metric: NeighborMetric::OffAxis,
            train_jobs: 1,
        }
    }
}

/// Per-window worker scratch: a tape (with its buffer pool) and a
/// detached gradient buffer, both grow-only across windows.
#[derive(Default)]
struct TrainSlot {
    tape: Tape,
    buf: GradBuffer,
    loss: Option<f32>,
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of the first epoch.
    pub first_epoch_loss: f32,
    /// Mean loss of the last epoch.
    pub last_epoch_loss: f32,
    /// Total candidate examples seen per epoch.
    pub examples_per_epoch: usize,
}

/// The trained importance model.
pub struct ImportanceModel {
    cfg: ModelConfig,
    params: ParamStore,
    emb_text: fieldswap_nn::ParamId,
    emb_pos: fieldswap_nn::ParamId,
    emb_cand: fieldswap_nn::ParamId,
    // The paper concatenates text and position embeddings before the
    // dense projection; `[T | P] @ W` is computed as
    // `T @ w_enc_text + P @ w_enc_pos`, which is the identical linear map
    // with the weight matrix split in half.
    w_enc_text: fieldswap_nn::ParamId,
    w_enc_pos: fieldswap_nn::ParamId,
    b_enc: fieldswap_nn::ParamId,
    wq: fieldswap_nn::ParamId,
    wk: fieldswap_nn::ParamId,
    wv: fieldswap_nn::ParamId,
    w_head: fieldswap_nn::ParamId,
    n_fields: usize,
}

/// One candidate's extracted features.
struct CandFeatures {
    text_ids: Vec<usize>,
    pos_ids: Vec<usize>,
    cand_pos: usize,
    /// Ids of the neighbor tokens, aligned with `text_ids`/`pos_ids`.
    neighbor_tokens: Vec<u32>,
}

impl ImportanceModel {
    /// Initializes an untrained model for a schema with `n_fields` output
    /// heads.
    pub fn new(cfg: ModelConfig, n_fields: usize, seed: u64) -> Self {
        let d = cfg.dim;
        let mut params = ParamStore::new(seed);
        let emb_text = params.tensor("emb_text", TEXT_VOCAB, d, Init::Uniform(0.2));
        let emb_pos = params.tensor("emb_pos", POS_VOCAB, d, Init::Uniform(0.2));
        let emb_cand = params.tensor("emb_cand", CAND_POS_VOCAB, cfg.cand_dim, Init::Uniform(0.2));
        let w_enc_text = params.tensor("w_enc_text", d, d, Init::Xavier);
        let w_enc_pos = params.tensor("w_enc_pos", d, d, Init::Xavier);
        let b_enc = params.tensor("b_enc", 1, d, Init::Zeros);
        let wq = params.tensor("wq", d, d, Init::Xavier);
        let wk = params.tensor("wk", d, d, Init::Xavier);
        let wv = params.tensor("wv", d, d, Init::Xavier);
        let w_head = params.tensor("w_head", d + cfg.cand_dim, n_fields, Init::Xavier);
        Self {
            cfg,
            params,
            emb_text,
            emb_pos,
            emb_cand,
            w_enc_text,
            w_enc_pos,
            b_enc,
            wq,
            wk,
            wv,
            w_head,
            n_fields,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn extract(&self, doc: &Document, start: u32, end: u32) -> CandFeatures {
        let center = doc.span_bbox(start, end).center();
        let neighbor_tokens =
            doc.neighbors_by_metric(start, end, self.cfg.neighbors, self.cfg.neighbor_metric);
        let mut text_ids = Vec::with_capacity(neighbor_tokens.len());
        let mut pos_ids = Vec::with_capacity(neighbor_tokens.len());
        for &t in &neighbor_tokens {
            let tok = &doc.tokens[t as usize];
            text_ids.push(text_id(&tok.text));
            pos_ids.push(rel_pos_id(center, tok.bbox.center()));
        }
        CandFeatures {
            text_ids,
            pos_ids,
            cand_pos: cand_pos_id(&doc.span_bbox(start, end)),
            neighbor_tokens,
        }
    }

    /// Runs the forward pass on `tape` (resetting it first), returning
    /// `(per-neighbor encoder output, neighborhood-encoding node, logits
    /// node)`. The per-neighbor node is the *pre-attention* encoding:
    /// self-attention mixes rows toward their mean, so the post-attention
    /// rows all resemble the pooled vector and carry no per-neighbor
    /// contrast; the encoder output is what distinguishes one neighbor
    /// from another.
    ///
    /// Reusing one tape across candidates recycles every intermediate
    /// tensor through the tape's buffer pool — the training loop reaches a
    /// steady state with no per-candidate allocation.
    fn forward_on(
        &self,
        tape: &mut Tape,
        f: &CandFeatures,
    ) -> Option<(
        fieldswap_nn::NodeId,
        fieldswap_nn::NodeId,
        fieldswap_nn::NodeId,
    )> {
        tape.reset();
        if f.text_ids.is_empty() {
            return None;
        }
        let d = self.cfg.dim;
        let te = tape.gather(&self.params, self.emb_text, &f.text_ids);
        let pe = tape.gather(&self.params, self.emb_pos, &f.pos_ids);
        let wt = tape.param(&self.params, self.w_enc_text);
        let wp = tape.param(&self.params, self.w_enc_pos);
        let be = tape.param(&self.params, self.b_enc);
        let ht = tape.matmul(te, wt);
        let hp = tape.matmul(pe, wp);
        let h = tape.add(ht, hp);
        let h = tape.add_row(h, be);
        let h = tape.relu(h);
        // Self-attention.
        let q = {
            let w = tape.param(&self.params, self.wq);
            tape.matmul(h, w)
        };
        let k = {
            let w = tape.param(&self.params, self.wk);
            tape.matmul(h, w)
        };
        let v = {
            let w = tape.param(&self.params, self.wv);
            tape.matmul(h, w)
        };
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scores = tape.scale(scores, 1.0 / (d as f32).sqrt());
        let att = tape.softmax(scores);
        let ctx = tape.matmul(att, v);
        // Neighborhood encoding.
        let pooled = tape.max_pool(ctx);
        // Candidate position embedding + head.
        let ce = tape.gather(&self.params, self.emb_cand, &[f.cand_pos]);
        let feat = tape.concat_cols(pooled, ce);
        let wh = tape.param(&self.params, self.w_head);
        let logits = tape.matmul(feat, wh);
        Some((h, pooled, logits))
    }

    /// Trains on `corpus` (the out-of-domain pre-training corpus).
    /// Candidates are the ground-truth field instances (positives for
    /// their field) plus base-type annotator spans that match no ground
    /// truth (all-zero targets).
    pub fn train(&mut self, corpus: &Corpus, seed: u64) -> TrainReport {
        assert_eq!(self.n_fields, corpus.schema.len(), "head/schema mismatch");
        let timing = fieldswap_obs::metrics_enabled();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(self.cfg.lr);
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        let mut per_epoch = 0usize;
        // Each slot holds a tape whose buffer pool recycles all
        // intermediate tensors and a detached gradient buffer; both reach
        // a steady state with no per-candidate allocation.
        let pool = WorkerPool::new(self.cfg.train_jobs);
        let mut slots: Vec<Mutex<TrainSlot>> = Vec::new();
        let worker_cands: Vec<AtomicU64> = (0..pool.jobs()).map(|_| AtomicU64::new(0)).collect();
        let mut obs_batches = 0u64;
        let mut merge_ms = 0.0f64;
        let mut cands: Vec<(usize, u32, u32, Vec<f32>)> = Vec::new();
        for epoch in 0..self.cfg.epochs {
            let mut order: Vec<usize> = (0..corpus.documents.len()).collect();
            order.shuffle(&mut rng);
            // Candidate sampling draws from the epoch rng stream in
            // shuffled document order, exactly as the per-document loop
            // did; forward/backward consume no randomness, so hoisting the
            // draws out of the hot loop is stream-neutral.
            cands.clear();
            for &di in &order {
                for (start, end, targets) in
                    self.training_candidates(&corpus.documents[di], &mut rng)
                {
                    cands.push((di, start, end, targets));
                }
            }
            let mut total = 0.0f64;
            let mut count = 0usize;
            for batch in cands.chunks(TRAIN_BATCH) {
                obs_batches += 1;
                while slots.len() < batch.len() {
                    slots.push(Mutex::new(TrainSlot::default()));
                }
                {
                    let this: &ImportanceModel = self;
                    let docs = &corpus.documents;
                    let worker_ref = &worker_cands;
                    pool.for_each_slot(&slots[..batch.len()], |worker, item, slot| {
                        worker_ref[worker].fetch_add(1, Ordering::Relaxed);
                        let (di, start, end, ref targets) = batch[item];
                        slot.loss = None;
                        slot.buf.clear();
                        let feats = this.extract(&docs[di], start, end);
                        let Some((_ctx, _pooled, logits)) = this.forward_on(&mut slot.tape, &feats)
                        else {
                            return;
                        };
                        let loss = slot.tape.bce_with_logits(logits, targets);
                        slot.loss = Some(slot.tape.value(loss).data()[0]);
                        slot.tape.backward_into(loss, &this.params, &mut slot.buf);
                    });
                }
                // Merge serially in candidate order, then take one Adam
                // step for the whole window.
                let merge_t0 = timing.then(std::time::Instant::now);
                let mut any = false;
                for slot in &mut slots[..batch.len()] {
                    let slot = slot.get_mut().expect("slot poisoned");
                    if let Some(l) = slot.loss {
                        total += f64::from(l);
                        count += 1;
                        slot.buf.merge_into(&mut self.params);
                        any = true;
                    }
                }
                if any {
                    opt.step(&mut self.params);
                }
                if let Some(t0) = merge_t0 {
                    merge_ms += t0.elapsed().as_secs_f64() * 1e3;
                }
            }
            let mean = if count > 0 { total / count as f64 } else { 0.0 };
            if epoch == 0 {
                first = mean;
            }
            last = mean;
            per_epoch = count;
        }
        if timing {
            fieldswap_obs::observe("fieldswap_nn_train_merge_ms", merge_ms);
            fieldswap_obs::counter_add("fieldswap_nn_train_batches_total", obs_batches);
            for (w, c) in worker_cands.iter().enumerate() {
                fieldswap_obs::counter_add(
                    &format!("fieldswap_nn_train_worker_cands_total{{worker=\"{w}\"}}"),
                    c.load(Ordering::Relaxed),
                );
            }
        }
        TrainReport {
            first_epoch_loss: first as f32,
            last_epoch_loss: last as f32,
            examples_per_epoch: per_epoch,
        }
    }

    /// Builds `(start, end, multi-hot target)` training candidates for one
    /// document: all ground-truth spans plus annotator spans that overlap
    /// no ground truth (sampled down to the configured budget).
    fn training_candidates(&self, doc: &Document, rng: &mut StdRng) -> Vec<(u32, u32, Vec<f32>)> {
        let mut out: Vec<(u32, u32, Vec<f32>)> = Vec::new();
        for a in &doc.annotations {
            let mut t = vec![0.0; self.n_fields];
            t[a.field as usize] = 1.0;
            out.push((a.start, a.end, t));
        }
        let mut negatives: Vec<(u32, u32)> = fieldswap_ocr::annotate_candidates(doc)
            .into_iter()
            .filter(|c| {
                !doc.annotations
                    .iter()
                    .any(|a| a.start < c.end && c.start < a.end)
            })
            .map(|c| (c.start, c.end))
            .collect();
        negatives.shuffle(rng);
        let neg_budget = self
            .cfg
            .max_candidates_per_doc
            .saturating_sub(out.len())
            .min(negatives.len());
        for (s, e) in negatives.into_iter().take(neg_budget) {
            out.push((s, e, vec![0.0; self.n_fields]));
        }
        out.shuffle(rng);
        out.truncate(self.cfg.max_candidates_per_doc);
        out
    }

    /// Computes, for the candidate span `[start, end)` of `doc`, each
    /// neighboring token's importance score: the cosine similarity between
    /// the Neighborhood Encoding and that neighbor's contextualized
    /// encoding. Returns `(token id, score)` pairs.
    pub fn neighbor_importance(&self, doc: &Document, start: u32, end: u32) -> Vec<(u32, f32)> {
        let mut tape = Tape::new();
        self.neighbor_importance_on(&mut tape, doc, start, end)
    }

    /// Like [`ImportanceModel::neighbor_importance`], but runs on a
    /// caller-held [`Tape`] so repeated scoring (e.g. the key-phrase
    /// inference loop) reuses one buffer pool instead of allocating a
    /// fresh graph per candidate. The tape is reset on entry.
    pub fn neighbor_importance_on(
        &self,
        tape: &mut Tape,
        doc: &Document,
        start: u32,
        end: u32,
    ) -> Vec<(u32, f32)> {
        let feats = self.extract(doc, start, end);
        let Some((enc, pooled, _logits)) = self.forward_on(tape, &feats) else {
            return Vec::new();
        };
        let pooled_v = tape.value(pooled).row(0);
        let ctx_v = tape.value(enc);
        feats
            .neighbor_tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, cosine_similarity(pooled_v, ctx_v.row(i))))
            .collect()
    }

    /// Field logits for a candidate (used by tests and diagnostics).
    pub fn predict_logits(&self, doc: &Document, start: u32, end: u32) -> Vec<f32> {
        let feats = self.extract(doc, start, end);
        let mut tape = Tape::new();
        match self.forward_on(&mut tape, &feats) {
            Some((_, _, logits)) => tape.value(logits).row(0).to_vec(),
            None => vec![0.0; self.n_fields],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};

    fn tiny_model_and_corpus() -> (ImportanceModel, Corpus) {
        let corpus = generate(Domain::Invoices, 42, 30);
        let model = ImportanceModel::new(ModelConfig::tiny(), corpus.schema.len(), 7);
        (model, corpus)
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, corpus) = tiny_model_and_corpus();
        let mut cfg = ModelConfig::tiny();
        cfg.epochs = 3;
        model.cfg = cfg;
        let report = model.train(&corpus, 1);
        assert!(report.examples_per_epoch > 50);
        assert!(
            report.last_epoch_loss < report.first_epoch_loss,
            "{report:?}"
        );
    }

    #[test]
    fn neighbor_importance_returns_scores_for_neighbors() {
        let (model, corpus) = tiny_model_and_corpus();
        let doc = corpus
            .documents
            .iter()
            .find(|d| !d.annotations.is_empty())
            .unwrap();
        let a = doc.annotations[0];
        let scores = model.neighbor_importance(doc, a.start, a.end);
        assert!(!scores.is_empty());
        assert!(scores.len() <= model.config().neighbors);
        for (t, s) in &scores {
            assert!((*t as usize) < doc.tokens.len());
            assert!((-1.0..=1.0).contains(s), "cosine out of range: {s}");
        }
        // The candidate's own tokens are not neighbors.
        assert!(scores.iter().all(|(t, _)| *t < a.start || *t >= a.end));
    }

    #[test]
    fn trained_model_scores_key_phrase_above_median() {
        // After training on invoices, the anchoring phrase tokens of a
        // money field should rank above the median neighbor.
        let corpus = generate(Domain::Invoices, 11, 120);
        let mut model = ImportanceModel::new(
            ModelConfig {
                epochs: 2,
                ..ModelConfig::tiny()
            },
            corpus.schema.len(),
            7,
        );
        model.train(&corpus, 3);
        let total_due = corpus.schema.field_id("total_due").unwrap();
        let mut wins = 0usize;
        let mut cases = 0usize;
        for doc in corpus.documents.iter().take(40) {
            let Some(a) = doc.spans_of(total_due).next().copied() else {
                continue;
            };
            let scores = model.neighbor_importance(doc, a.start, a.end);
            if scores.len() < 4 {
                continue;
            }
            let mut sorted: Vec<f32> = scores.iter().map(|(_, s)| *s).collect();
            sorted.sort_by(f32::total_cmp);
            let median = sorted[sorted.len() / 2];
            // Phrase tokens: any neighbor whose text is part of a
            // total-due synonym.
            let phrase_scores: Vec<f32> = scores
                .iter()
                .filter(|(t, _)| {
                    let txt = doc.tokens[*t as usize].lower();
                    ["total", "amount", "due", "balance"].contains(&txt.trim_end_matches(':'))
                })
                .map(|(_, s)| *s)
                .collect();
            if phrase_scores.is_empty() {
                continue;
            }
            cases += 1;
            let best_phrase = phrase_scores.iter().copied().fold(f32::MIN, f32::max);
            if best_phrase >= median {
                wins += 1;
            }
        }
        assert!(cases >= 10, "too few evaluable cases: {cases}");
        assert!(
            wins * 2 > cases,
            "phrase tokens should beat the median in most cases: {wins}/{cases}"
        );
    }

    #[test]
    fn predict_logits_has_field_arity() {
        let (model, corpus) = tiny_model_and_corpus();
        let doc = &corpus.documents[0];
        let a = doc.annotations[0];
        assert_eq!(
            model.predict_logits(doc, a.start, a.end).len(),
            corpus.schema.len()
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let corpus = generate(Domain::Invoices, 5, 10);
        let run = || {
            let mut m = ImportanceModel::new(ModelConfig::tiny(), corpus.schema.len(), 9);
            m.train(&corpus, 2);
            let d = &corpus.documents[0];
            let a = d.annotations[0];
            m.neighbor_importance(d, a.start, a.end)
        };
        assert_eq!(run(), run());
    }

    /// Every parameter scalar of the trained model, as raw f32 bits.
    fn param_bits(m: &ImportanceModel) -> Vec<u32> {
        m.params
            .values()
            .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn parallel_training_is_bitwise_identical_to_serial() {
        // `train_jobs` may only change wall-clock time: compare every
        // parameter scalar bit for bit, plus the loss report.
        let corpus = generate(Domain::Invoices, 6, 12);
        let run = |jobs: usize| {
            let cfg = ModelConfig {
                epochs: 2,
                train_jobs: jobs,
                ..ModelConfig::tiny()
            };
            let mut m = ImportanceModel::new(cfg, corpus.schema.len(), 9);
            let report = m.train(&corpus, 4);
            (report, param_bits(&m))
        };
        let serial = run(1);
        for jobs in [2, 3, 8] {
            let par = run(jobs);
            assert_eq!(serial.0, par.0, "train_jobs={jobs} report diverged");
            assert_eq!(serial.1, par.1, "train_jobs={jobs} params diverged");
        }
    }

    #[test]
    fn proptest_train_jobs_invariance() {
        // Random corpus sizes, epoch counts, seeds, and thread counts:
        // the trained parameters never depend on `train_jobs`.
        use proptest::prelude::*;
        use proptest::test_runner::{Config as PtConfig, TestRunner};
        let pool = generate(Domain::Earnings, 51, 10);
        let mut runner = TestRunner::new(PtConfig::with_cases(6));
        runner
            .run(
                &(2usize..=8, 1usize..=2, 0u64..=3, 2usize..=10),
                |(jobs, epochs, seed, n_docs)| {
                    let corpus =
                        Corpus::new(pool.schema.clone(), pool.documents[..n_docs].to_vec());
                    let run = |train_jobs: usize| {
                        let cfg = ModelConfig {
                            epochs,
                            train_jobs,
                            ..ModelConfig::tiny()
                        };
                        let mut m = ImportanceModel::new(cfg, corpus.schema.len(), 9);
                        m.train(&corpus, seed);
                        param_bits(&m)
                    };
                    prop_assert_eq!(run(1), run(jobs));
                    Ok(())
                },
            )
            .unwrap();
    }
}
