//! The candidate-based importance model (paper Fig. 2).
//!
//! For a base-type candidate (e.g. the amount `$3,308.62`), the model:
//!
//! 1. encodes each of the `t` nearest neighboring tokens by concatenating a
//!    hashed **text embedding** and a quantized **relative-position
//!    embedding**, passed through a dense+ReLU projection;
//! 2. contextualizes neighbors with one **self-attention** layer;
//! 3. **max-pools** the contextualized neighbor encodings into a single
//!    *Neighborhood Encoding*;
//! 4. concatenates a **candidate position embedding** and applies a linear
//!    head producing one **binary logit per field** of the training
//!    schema.
//!
//! At transfer time only the intermediate encodings matter: the importance
//! score of neighbor `i` is `cosine(NeighborhoodEncoding, H_i)` where
//! `H_i` is that neighbor's contextualized encoding — exactly the
//! manipulation the paper performs on the model's intermediate outputs.

use crate::features::{cand_pos_id, rel_pos_id, text_id, CAND_POS_VOCAB, POS_VOCAB, TEXT_VOCAB};
use fieldswap_docmodel::{Corpus, Document, NeighborMetric};
use fieldswap_nn::{cosine_similarity, Adam, Init, Optimizer, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Embedding/encoder width.
    pub dim: usize,
    /// Candidate-position embedding width.
    pub cand_dim: usize,
    /// Number of neighboring tokens per candidate (the paper uses 100).
    pub neighbors: usize,
    /// Training epochs over the pre-training corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Max candidates sampled per document during training (cost control).
    pub max_candidates_per_doc: usize,
    /// Neighbor-selection metric (the paper uses off-axis distance; the
    /// Euclidean variant exists for the ablation bench).
    pub neighbor_metric: NeighborMetric,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            dim: 24,
            cand_dim: 8,
            neighbors: 100,
            epochs: 2,
            lr: 0.01,
            max_candidates_per_doc: 24,
            neighbor_metric: NeighborMetric::OffAxis,
        }
    }
}

impl ModelConfig {
    /// A small, fast profile for unit tests.
    pub fn tiny() -> Self {
        Self {
            dim: 12,
            cand_dim: 4,
            neighbors: 16,
            epochs: 1,
            lr: 0.02,
            max_candidates_per_doc: 8,
            neighbor_metric: NeighborMetric::OffAxis,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of the first epoch.
    pub first_epoch_loss: f32,
    /// Mean loss of the last epoch.
    pub last_epoch_loss: f32,
    /// Total candidate examples seen per epoch.
    pub examples_per_epoch: usize,
}

/// The trained importance model.
pub struct ImportanceModel {
    cfg: ModelConfig,
    params: ParamStore,
    emb_text: fieldswap_nn::ParamId,
    emb_pos: fieldswap_nn::ParamId,
    emb_cand: fieldswap_nn::ParamId,
    // The paper concatenates text and position embeddings before the
    // dense projection; `[T | P] @ W` is computed as
    // `T @ w_enc_text + P @ w_enc_pos`, which is the identical linear map
    // with the weight matrix split in half.
    w_enc_text: fieldswap_nn::ParamId,
    w_enc_pos: fieldswap_nn::ParamId,
    b_enc: fieldswap_nn::ParamId,
    wq: fieldswap_nn::ParamId,
    wk: fieldswap_nn::ParamId,
    wv: fieldswap_nn::ParamId,
    w_head: fieldswap_nn::ParamId,
    n_fields: usize,
}

/// One candidate's extracted features.
struct CandFeatures {
    text_ids: Vec<usize>,
    pos_ids: Vec<usize>,
    cand_pos: usize,
    /// Ids of the neighbor tokens, aligned with `text_ids`/`pos_ids`.
    neighbor_tokens: Vec<u32>,
}

impl ImportanceModel {
    /// Initializes an untrained model for a schema with `n_fields` output
    /// heads.
    pub fn new(cfg: ModelConfig, n_fields: usize, seed: u64) -> Self {
        let d = cfg.dim;
        let mut params = ParamStore::new(seed);
        let emb_text = params.tensor("emb_text", TEXT_VOCAB, d, Init::Uniform(0.2));
        let emb_pos = params.tensor("emb_pos", POS_VOCAB, d, Init::Uniform(0.2));
        let emb_cand = params.tensor("emb_cand", CAND_POS_VOCAB, cfg.cand_dim, Init::Uniform(0.2));
        let w_enc_text = params.tensor("w_enc_text", d, d, Init::Xavier);
        let w_enc_pos = params.tensor("w_enc_pos", d, d, Init::Xavier);
        let b_enc = params.tensor("b_enc", 1, d, Init::Zeros);
        let wq = params.tensor("wq", d, d, Init::Xavier);
        let wk = params.tensor("wk", d, d, Init::Xavier);
        let wv = params.tensor("wv", d, d, Init::Xavier);
        let w_head = params.tensor("w_head", d + cfg.cand_dim, n_fields, Init::Xavier);
        Self {
            cfg,
            params,
            emb_text,
            emb_pos,
            emb_cand,
            w_enc_text,
            w_enc_pos,
            b_enc,
            wq,
            wk,
            wv,
            w_head,
            n_fields,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn extract(&self, doc: &Document, start: u32, end: u32) -> CandFeatures {
        let center = doc.span_bbox(start, end).center();
        let neighbor_tokens =
            doc.neighbors_by_metric(start, end, self.cfg.neighbors, self.cfg.neighbor_metric);
        let mut text_ids = Vec::with_capacity(neighbor_tokens.len());
        let mut pos_ids = Vec::with_capacity(neighbor_tokens.len());
        for &t in &neighbor_tokens {
            let tok = &doc.tokens[t as usize];
            text_ids.push(text_id(&tok.text));
            pos_ids.push(rel_pos_id(center, tok.bbox.center()));
        }
        CandFeatures {
            text_ids,
            pos_ids,
            cand_pos: cand_pos_id(&doc.span_bbox(start, end)),
            neighbor_tokens,
        }
    }

    /// Runs the forward pass on `tape` (resetting it first), returning
    /// `(per-neighbor encoder output, neighborhood-encoding node, logits
    /// node)`. The per-neighbor node is the *pre-attention* encoding:
    /// self-attention mixes rows toward their mean, so the post-attention
    /// rows all resemble the pooled vector and carry no per-neighbor
    /// contrast; the encoder output is what distinguishes one neighbor
    /// from another.
    ///
    /// Reusing one tape across candidates recycles every intermediate
    /// tensor through the tape's buffer pool — the training loop reaches a
    /// steady state with no per-candidate allocation.
    fn forward_on(
        &self,
        tape: &mut Tape,
        f: &CandFeatures,
    ) -> Option<(
        fieldswap_nn::NodeId,
        fieldswap_nn::NodeId,
        fieldswap_nn::NodeId,
    )> {
        tape.reset();
        if f.text_ids.is_empty() {
            return None;
        }
        let d = self.cfg.dim;
        let te = tape.gather(&self.params, self.emb_text, &f.text_ids);
        let pe = tape.gather(&self.params, self.emb_pos, &f.pos_ids);
        let wt = tape.param(&self.params, self.w_enc_text);
        let wp = tape.param(&self.params, self.w_enc_pos);
        let be = tape.param(&self.params, self.b_enc);
        let ht = tape.matmul(te, wt);
        let hp = tape.matmul(pe, wp);
        let h = tape.add(ht, hp);
        let h = tape.add_row(h, be);
        let h = tape.relu(h);
        // Self-attention.
        let q = {
            let w = tape.param(&self.params, self.wq);
            tape.matmul(h, w)
        };
        let k = {
            let w = tape.param(&self.params, self.wk);
            tape.matmul(h, w)
        };
        let v = {
            let w = tape.param(&self.params, self.wv);
            tape.matmul(h, w)
        };
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scores = tape.scale(scores, 1.0 / (d as f32).sqrt());
        let att = tape.softmax(scores);
        let ctx = tape.matmul(att, v);
        // Neighborhood encoding.
        let pooled = tape.max_pool(ctx);
        // Candidate position embedding + head.
        let ce = tape.gather(&self.params, self.emb_cand, &[f.cand_pos]);
        let feat = tape.concat_cols(pooled, ce);
        let wh = tape.param(&self.params, self.w_head);
        let logits = tape.matmul(feat, wh);
        Some((h, pooled, logits))
    }

    /// Trains on `corpus` (the out-of-domain pre-training corpus).
    /// Candidates are the ground-truth field instances (positives for
    /// their field) plus base-type annotator spans that match no ground
    /// truth (all-zero targets).
    pub fn train(&mut self, corpus: &Corpus, seed: u64) -> TrainReport {
        assert_eq!(self.n_fields, corpus.schema.len(), "head/schema mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(self.cfg.lr);
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        let mut per_epoch = 0usize;
        // One tape for the whole run; `forward_on` resets it per candidate
        // and its buffer pool recycles all intermediate tensors.
        let mut tape = Tape::new();
        for epoch in 0..self.cfg.epochs {
            let mut order: Vec<usize> = (0..corpus.documents.len()).collect();
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut count = 0usize;
            for &di in &order {
                let doc = &corpus.documents[di];
                let cands = self.training_candidates(doc, &mut rng);
                for (start, end, targets) in cands {
                    let feats = self.extract(doc, start, end);
                    let Some((_ctx, _pooled, logits)) = self.forward_on(&mut tape, &feats) else {
                        continue;
                    };
                    let loss = tape.bce_with_logits(logits, &targets);
                    total += f64::from(tape.value(loss).data()[0]);
                    count += 1;
                    tape.backward(loss, &mut self.params);
                    opt.step(&mut self.params);
                }
            }
            let mean = if count > 0 { total / count as f64 } else { 0.0 };
            if epoch == 0 {
                first = mean;
            }
            last = mean;
            per_epoch = count;
        }
        TrainReport {
            first_epoch_loss: first as f32,
            last_epoch_loss: last as f32,
            examples_per_epoch: per_epoch,
        }
    }

    /// Builds `(start, end, multi-hot target)` training candidates for one
    /// document: all ground-truth spans plus annotator spans that overlap
    /// no ground truth (sampled down to the configured budget).
    fn training_candidates(&self, doc: &Document, rng: &mut StdRng) -> Vec<(u32, u32, Vec<f32>)> {
        let mut out: Vec<(u32, u32, Vec<f32>)> = Vec::new();
        for a in &doc.annotations {
            let mut t = vec![0.0; self.n_fields];
            t[a.field as usize] = 1.0;
            out.push((a.start, a.end, t));
        }
        let mut negatives: Vec<(u32, u32)> = fieldswap_ocr::annotate_candidates(doc)
            .into_iter()
            .filter(|c| {
                !doc.annotations
                    .iter()
                    .any(|a| a.start < c.end && c.start < a.end)
            })
            .map(|c| (c.start, c.end))
            .collect();
        negatives.shuffle(rng);
        let neg_budget = self
            .cfg
            .max_candidates_per_doc
            .saturating_sub(out.len())
            .min(negatives.len());
        for (s, e) in negatives.into_iter().take(neg_budget) {
            out.push((s, e, vec![0.0; self.n_fields]));
        }
        out.shuffle(rng);
        out.truncate(self.cfg.max_candidates_per_doc);
        out
    }

    /// Computes, for the candidate span `[start, end)` of `doc`, each
    /// neighboring token's importance score: the cosine similarity between
    /// the Neighborhood Encoding and that neighbor's contextualized
    /// encoding. Returns `(token id, score)` pairs.
    pub fn neighbor_importance(&self, doc: &Document, start: u32, end: u32) -> Vec<(u32, f32)> {
        let mut tape = Tape::new();
        self.neighbor_importance_on(&mut tape, doc, start, end)
    }

    /// Like [`ImportanceModel::neighbor_importance`], but runs on a
    /// caller-held [`Tape`] so repeated scoring (e.g. the key-phrase
    /// inference loop) reuses one buffer pool instead of allocating a
    /// fresh graph per candidate. The tape is reset on entry.
    pub fn neighbor_importance_on(
        &self,
        tape: &mut Tape,
        doc: &Document,
        start: u32,
        end: u32,
    ) -> Vec<(u32, f32)> {
        let feats = self.extract(doc, start, end);
        let Some((enc, pooled, _logits)) = self.forward_on(tape, &feats) else {
            return Vec::new();
        };
        let pooled_v = tape.value(pooled).row(0);
        let ctx_v = tape.value(enc);
        feats
            .neighbor_tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, cosine_similarity(pooled_v, ctx_v.row(i))))
            .collect()
    }

    /// Field logits for a candidate (used by tests and diagnostics).
    pub fn predict_logits(&self, doc: &Document, start: u32, end: u32) -> Vec<f32> {
        let feats = self.extract(doc, start, end);
        let mut tape = Tape::new();
        match self.forward_on(&mut tape, &feats) {
            Some((_, _, logits)) => tape.value(logits).row(0).to_vec(),
            None => vec![0.0; self.n_fields],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};

    fn tiny_model_and_corpus() -> (ImportanceModel, Corpus) {
        let corpus = generate(Domain::Invoices, 42, 30);
        let model = ImportanceModel::new(ModelConfig::tiny(), corpus.schema.len(), 7);
        (model, corpus)
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, corpus) = tiny_model_and_corpus();
        let mut cfg = ModelConfig::tiny();
        cfg.epochs = 3;
        model.cfg = cfg;
        let report = model.train(&corpus, 1);
        assert!(report.examples_per_epoch > 50);
        assert!(
            report.last_epoch_loss < report.first_epoch_loss,
            "{report:?}"
        );
    }

    #[test]
    fn neighbor_importance_returns_scores_for_neighbors() {
        let (model, corpus) = tiny_model_and_corpus();
        let doc = corpus
            .documents
            .iter()
            .find(|d| !d.annotations.is_empty())
            .unwrap();
        let a = doc.annotations[0];
        let scores = model.neighbor_importance(doc, a.start, a.end);
        assert!(!scores.is_empty());
        assert!(scores.len() <= model.config().neighbors);
        for (t, s) in &scores {
            assert!((*t as usize) < doc.tokens.len());
            assert!((-1.0..=1.0).contains(s), "cosine out of range: {s}");
        }
        // The candidate's own tokens are not neighbors.
        assert!(scores.iter().all(|(t, _)| *t < a.start || *t >= a.end));
    }

    #[test]
    fn trained_model_scores_key_phrase_above_median() {
        // After training on invoices, the anchoring phrase tokens of a
        // money field should rank above the median neighbor.
        let corpus = generate(Domain::Invoices, 11, 120);
        let mut model = ImportanceModel::new(
            ModelConfig {
                epochs: 2,
                ..ModelConfig::tiny()
            },
            corpus.schema.len(),
            7,
        );
        model.train(&corpus, 3);
        let total_due = corpus.schema.field_id("total_due").unwrap();
        let mut wins = 0usize;
        let mut cases = 0usize;
        for doc in corpus.documents.iter().take(40) {
            let Some(a) = doc.spans_of(total_due).next().copied() else {
                continue;
            };
            let scores = model.neighbor_importance(doc, a.start, a.end);
            if scores.len() < 4 {
                continue;
            }
            let mut sorted: Vec<f32> = scores.iter().map(|(_, s)| *s).collect();
            sorted.sort_by(f32::total_cmp);
            let median = sorted[sorted.len() / 2];
            // Phrase tokens: any neighbor whose text is part of a
            // total-due synonym.
            let phrase_scores: Vec<f32> = scores
                .iter()
                .filter(|(t, _)| {
                    let txt = doc.tokens[*t as usize].lower();
                    ["total", "amount", "due", "balance"].contains(&txt.trim_end_matches(':'))
                })
                .map(|(_, s)| *s)
                .collect();
            if phrase_scores.is_empty() {
                continue;
            }
            cases += 1;
            let best_phrase = phrase_scores.iter().copied().fold(f32::MIN, f32::max);
            if best_phrase >= median {
                wins += 1;
            }
        }
        assert!(cases >= 10, "too few evaluable cases: {cases}");
        assert!(
            wins * 2 > cases,
            "phrase tokens should beat the median in most cases: {wins}/{cases}"
        );
    }

    #[test]
    fn predict_logits_has_field_arity() {
        let (model, corpus) = tiny_model_and_corpus();
        let doc = &corpus.documents[0];
        let a = doc.annotations[0];
        assert_eq!(
            model.predict_logits(doc, a.start, a.end).len(),
            corpus.schema.len()
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let corpus = generate(Domain::Invoices, 5, 10);
        let run = || {
            let mut m = ImportanceModel::new(ModelConfig::tiny(), corpus.schema.len(), 9);
            m.train(&corpus, 2);
            let d = &corpus.documents[0];
            let a = d.annotations[0];
            m.neighbor_importance(d, a.start, a.end)
        };
        assert_eq!(run(), run());
    }
}
