//! Semi-supervised key-phrase mining — the paper's final future-work
//! question: "Can we extract key phrases from an unlabeled corpus to
//! facilitate semi-supervised learning?" (Section VI).
//!
//! The approach implemented here expands a seed configuration (inferred
//! from a small labeled set, or name-derived) using a large *unlabeled*
//! corpus of the same document type:
//!
//! 1. **Template-phrase mining** — collect every short OCR line that
//!    recurs across many unlabeled documents. Recurring lines are template
//!    vocabulary (key phrases, section headers); one-off lines are values.
//! 2. **Seed-anchored expansion** — a mined phrase is attributed to a
//!    field when it shares a content word with one of the field's seed
//!    phrases (`"overtime"` seed admits the mined `"overtime pay"`) and is
//!    not already a phrase of a *different* field (which would create
//!    contradictory swaps).
//!
//! The result is a richer synonym bank than the labeled sample alone can
//! provide — exactly what rare fields need — at zero additional labeling
//! cost.

use fieldswap_core::config::normalize_phrase;
use fieldswap_core::FieldSwapConfig;
use fieldswap_docmodel::Document;
use std::collections::HashMap;

/// Knobs for the unlabeled-corpus mining pass.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// A line must appear in at least this fraction of the unlabeled
    /// documents to count as template vocabulary.
    pub min_doc_fraction: f64,
    /// Maximum words in a mined phrase (key phrases are short).
    pub max_words: usize,
    /// Cap on phrases added per field.
    pub max_new_phrases_per_field: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            min_doc_fraction: 0.05,
            max_words: 4,
            max_new_phrases_per_field: 3,
        }
    }
}

/// Words too generic to anchor a phrase to a field on their own.
const STOPWORDS: [&str; 14] = [
    "the", "of", "a", "an", "to", "and", "or", "for", "date", "number", "no", "total", "name",
    "amount",
];

/// Mines recurring template phrases from unlabeled documents: normalized
/// line texts with their document frequencies, sorted by frequency.
pub fn mine_template_phrases(docs: &[Document], cfg: &MiningConfig) -> Vec<(String, usize)> {
    let mut df: HashMap<String, usize> = HashMap::new();
    for doc in docs {
        let mut seen: Vec<String> = Vec::new();
        for line in &doc.lines {
            if line.tokens.len() > cfg.max_words {
                continue;
            }
            // Lines containing digits are value-bearing, not phrases.
            if line.tokens.iter().any(|&t| {
                doc.tokens[t as usize]
                    .text
                    .chars()
                    .any(|c| c.is_ascii_digit())
            }) {
                continue;
            }
            let words: Vec<&str> = line
                .tokens
                .iter()
                .map(|&t| doc.tokens[t as usize].text.as_str())
                .collect();
            let phrase = normalize_phrase(&words.join(" "));
            if phrase.is_empty() || seen.contains(&phrase) {
                continue;
            }
            seen.push(phrase);
        }
        for p in seen {
            *df.entry(p).or_insert(0) += 1;
        }
    }
    let min_docs = ((docs.len() as f64) * cfg.min_doc_fraction).ceil() as usize;
    let mut out: Vec<(String, usize)> = df
        .into_iter()
        .filter(|(_, c)| *c >= min_docs.max(2))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Expands `seed` with mined phrases: a mined phrase joins field `f` when
/// it shares a non-stopword content word with one of `f`'s seed phrases
/// and no *other* field's seeds claim it. Returns the expanded config and
/// the number of phrases added.
pub fn expand_with_unlabeled(
    seed: &FieldSwapConfig,
    unlabeled: &[Document],
    cfg: &MiningConfig,
) -> (FieldSwapConfig, usize) {
    let mined = mine_template_phrases(unlabeled, cfg);
    let mut expanded = seed.clone();
    let mut added = 0usize;
    let mut added_per_field = vec![0usize; seed.n_fields()];

    for (phrase, _df) in &mined {
        let words: Vec<&str> = phrase
            .split_whitespace()
            .filter(|w| !STOPWORDS.contains(w))
            .collect();
        if words.is_empty() {
            continue;
        }
        // Fields whose seeds share a content word with the mined phrase.
        let mut claimants: Vec<u16> = Vec::new();
        for f in 0..seed.n_fields() as u16 {
            let claims = seed
                .phrases(f)
                .iter()
                .any(|sp| sp.split_whitespace().any(|sw| words.contains(&sw)));
            if claims {
                claimants.push(f);
            }
        }
        // Unambiguous attribution only; shared-word phrases across fields
        // would recreate the contradictory-pair hazard. Fields that share
        // banks (current.X / year_to_date.X) both claim — allow up to 2
        // claimants when they already share a seed phrase.
        let attribute_to: Vec<u16> = match claimants.len() {
            1 => claimants,
            2 => {
                let (a, b) = (claimants[0], claimants[1]);
                let share_seed = seed.phrases(a).iter().any(|p| seed.phrases(b).contains(p));
                if share_seed {
                    claimants
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        for f in attribute_to {
            if added_per_field[f as usize] >= cfg.max_new_phrases_per_field {
                continue;
            }
            if !expanded.phrases(f).contains(phrase) {
                expanded.add_phrase(f, phrase);
                added_per_field[f as usize] += 1;
                added += 1;
            }
        }
    }
    (expanded, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};

    #[test]
    fn mining_finds_recurring_template_lines() {
        let corpus = generate(Domain::Earnings, 55, 80);
        let mined = mine_template_phrases(&corpus.documents, &MiningConfig::default());
        assert!(!mined.is_empty());
        let phrases: Vec<&str> = mined.iter().map(|(p, _)| p.as_str()).collect();
        // The per-document header recurs everywhere.
        assert!(phrases.contains(&"earnings statement"));
        // Frequencies sorted descending.
        for w in mined.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // No numeric value lines.
        assert!(mined
            .iter()
            .all(|(p, _)| !p.chars().any(|c| c.is_ascii_digit())));
    }

    #[test]
    fn expansion_adds_synonyms_for_seeded_fields() {
        let corpus = generate(Domain::Earnings, 56, 120);
        let schema = &corpus.schema;
        // Seed: one phrase per pay field, as a tiny labeled set would give.
        let mut seed = FieldSwapConfig::new(schema.len());
        let overtime_cur = schema.field_id("current.overtime").unwrap();
        let overtime_ytd = schema.field_id("year_to_date.overtime").unwrap();
        seed.set_phrases(overtime_cur, vec!["Overtime".into()]);
        seed.set_phrases(overtime_ytd, vec!["Overtime".into()]);
        let (expanded, added) =
            expand_with_unlabeled(&seed, &corpus.documents, &MiningConfig::default());
        assert!(added > 0, "nothing mined");
        // The mined bank should now include a multi-word overtime synonym
        // that actually occurs in the corpus ("overtime pay"/"ot pay"...).
        let bank = expanded.phrases(overtime_cur);
        assert!(bank.len() > 1, "no expansion for overtime: {bank:?}");
        assert!(bank
            .iter()
            .all(|p| p.contains("overtime") || p.contains("ot")));
    }

    #[test]
    fn ambiguous_phrases_not_attributed() {
        let corpus = generate(Domain::Earnings, 57, 60);
        let schema = &corpus.schema;
        let mut seed = FieldSwapConfig::new(schema.len());
        // Two unrelated fields whose seeds share the word "pay": the mined
        // phrase "net pay" must not join the PTO field.
        let net = schema.field_id("net_pay").unwrap();
        let pto = schema.field_id("current.pto_pay").unwrap();
        seed.set_phrases(net, vec!["net pay".into()]);
        seed.set_phrases(pto, vec!["pto pay".into()]);
        let (expanded, _) =
            expand_with_unlabeled(&seed, &corpus.documents, &MiningConfig::default());
        assert!(
            !expanded.phrases(pto).iter().any(|p| p == "net pay"),
            "ambiguous mined phrase leaked: {:?}",
            expanded.phrases(pto)
        );
    }

    #[test]
    fn empty_unlabeled_corpus_is_identity() {
        let mut seed = FieldSwapConfig::new(3);
        seed.add_phrase(0, "total due");
        let (expanded, added) = expand_with_unlabeled(&seed, &[], &MiningConfig::default());
        assert_eq!(added, 0);
        assert_eq!(expanded, seed);
    }
}
