#![warn(missing_docs)]

//! # fieldswap-keyphrase
//!
//! Automatic key-phrase inference (paper Section II-A).
//!
//! The pipeline, end to end:
//!
//! 1. **Candidate neighbors** — for each labeled field instance, take the
//!    `t` closest tokens by *off-axis distance* (Section II-A2).
//! 2. **Importance model** (the [`model`] module) — the candidate-based binary
//!    classifier of Fig. 2: per-neighbor text + relative-position
//!    embeddings, a self-attention encoder, max-pooling into a
//!    *Neighborhood Encoding*, and binary field heads. It is trained on an
//!    out-of-domain corpus (invoices) and applied unchanged to the target
//!    domain; relative-position cues transfer across domains.
//! 3. **Importance scores** — cosine similarity between the Neighborhood
//!    Encoding and each individual neighbor encoding, sparsified with
//!    *sparsemax* to pick the important tokens.
//! 4. **Phrase expansion** ([`pipeline`]) — important tokens grow to their
//!    full OCR line (Section II-A3), scored by the mean token importance,
//!    with leading/trailing punctuation cleaned.
//! 5. **Aggregation** — per (field, phrase) noisy-or combination (Eq. 1),
//!    ground-truth-token exclusion, importance threshold θ, and top-k
//!    ranking (Sections II-A4 and II-A5).

pub mod features;
pub mod mining;
pub mod model;
pub mod namegen;
pub mod pipeline;

pub use mining::{expand_with_unlabeled, mine_template_phrases, MiningConfig};
pub use model::{ImportanceModel, ModelConfig, TrainReport};
pub use namegen::{config_from_schema, phrases_from_name};
pub use pipeline::{infer_key_phrases, Aggregation, InferenceConfig, RankedPhrase, Sparsify};

// The pre-trained importance model is shared read-only across the
// parallel harness's worker threads; keep it `Send + Sync`.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<ImportanceModel>();
};
