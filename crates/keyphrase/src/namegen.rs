//! Key phrases derived from field *names* — an implementation of the
//! paper's future-work question: "Is it possible to use a large language
//! model (LLM) instead of a human expert to generate a set of key phrases
//! based on field names or descriptions?" (Section VI).
//!
//! In this offline reproduction the LLM is simulated with a deterministic
//! rule-based expander: field names are split on schema punctuation,
//! prefix qualifiers (`current.`, `year_to_date.`) are handled, the words
//! are title-cased, and a small domain thesaurus contributes common
//! synonyms (`total` → `amount due`, `date` variants, etc.). The output
//! plugs into a [`FieldSwapConfig`] exactly like expert phrases, giving a
//! zero-annotation configuration: no labeled examples are needed at all.

use fieldswap_core::FieldSwapConfig;
use fieldswap_docmodel::Schema;

/// Thesaurus of word-level expansions applied to name-derived phrases.
const THESAURUS: [(&str, &[&str]); 10] = [
    ("total", &["total due", "amount due"]),
    ("due", &["due", "owed"]),
    ("pay", &["pay", "payment"]),
    ("number", &["number", "no"]),
    ("id", &["id", "identifier"]),
    ("start", &["start", "begin", "beginning"]),
    ("end", &["end", "ending"]),
    ("salary", &["salary", "base salary"]),
    ("fee", &["fee", "charge"]),
    ("address", &["address", "mailing address"]),
];

/// Derives candidate key phrases for one field name. The first phrase is
/// the title-cased name itself (qualifier stripped); thesaurus expansions
/// and a qualifier-suffixed variant follow. Returns an empty list for
/// names with no alphabetic content.
pub fn phrases_from_name(name: &str) -> Vec<String> {
    // Strip the "current." / "year_to_date." style qualifier; the table
    // row phrase is the unqualified stem.
    let stem = name.rsplit('.').next().unwrap_or(name);
    let words: Vec<String> = stem
        .split(['_', '.', '-'])
        .filter(|w| !w.is_empty() && w.chars().any(|c| c.is_alphabetic()))
        .map(str::to_lowercase)
        .collect();
    if words.is_empty() {
        return Vec::new();
    }
    let base = words.join(" ");
    let mut out = vec![base.clone()];
    // Thesaurus: replace each word that has expansions, one at a time.
    // Multi-word substitutions can duplicate a following word ("total" ->
    // "amount due" in "total due" gives "amount due due"); adjacent
    // duplicates are collapsed.
    for (i, w) in words.iter().enumerate() {
        if let Some((_, subs)) = THESAURUS.iter().find(|(k, _)| k == w) {
            for sub in *subs {
                let mut alt = words.clone();
                alt[i] = (*sub).to_string();
                let phrase = collapse_adjacent_duplicates(&alt.join(" "));
                if !out.contains(&phrase) {
                    out.push(phrase);
                }
            }
        }
    }
    // A shortened variant dropping a leading generic word ("employee
    // name" -> "name" is too generic, but "pay period start" -> "period
    // start" is useful). Only drop when 3+ words remain informative.
    if words.len() >= 3 {
        let short = words[1..].join(" ");
        if !out.contains(&short) {
            out.push(short);
        }
    }
    out.truncate(4);
    out
}

/// Collapses adjacent repeated words: `"amount due due"` → `"amount due"`.
fn collapse_adjacent_duplicates(phrase: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for w in phrase.split_whitespace() {
        if out.last() != Some(&w) {
            out.push(w);
        }
    }
    out.join(" ")
}

/// Builds a complete zero-annotation FieldSwap configuration from a
/// schema: phrases from names, for every field. The caller chooses the
/// pair strategy afterwards.
pub fn config_from_schema(schema: &Schema) -> FieldSwapConfig {
    let mut config = FieldSwapConfig::new(schema.len());
    for (id, def) in schema.iter() {
        config.set_phrases(id, phrases_from_name(&def.name));
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BaseType, FieldDef};

    #[test]
    fn strips_qualifier_and_title_cases() {
        let p = phrases_from_name("current.base_salary");
        assert_eq!(p[0], "base salary");
        assert!(!p.iter().any(|x| x.contains("current")));
    }

    #[test]
    fn thesaurus_expands() {
        let p = phrases_from_name("total_due");
        assert!(p.contains(&"total due".to_string()));
        assert!(p.contains(&"amount due".to_string()));
    }

    #[test]
    fn multiword_shortening() {
        let p = phrases_from_name("pay_period_start");
        assert!(p.contains(&"period start".to_string()) || p.iter().any(|x| x.contains("start")));
    }

    #[test]
    fn empty_and_numeric_names() {
        assert!(phrases_from_name("").is_empty());
        assert!(phrases_from_name("123").is_empty());
    }

    #[test]
    fn config_covers_all_fields() {
        let schema = Schema::new(
            "t",
            vec![
                FieldDef::new("net_pay", BaseType::Money),
                FieldDef::new("year_to_date.overtime", BaseType::Money),
            ],
        );
        let c = config_from_schema(&schema);
        assert!(c.has_phrases(0));
        assert!(c.has_phrases(1));
        assert_eq!(c.phrases(1)[0], "overtime");
    }

    #[test]
    fn phrases_are_normalized() {
        for p in phrases_from_name("payment_due_date") {
            assert_eq!(p, p.to_lowercase());
            assert!(!p.contains('_'));
        }
    }

    #[test]
    fn name_derived_phrases_overlap_earnings_oracle() {
        // The simulated-LLM phrases should frequently hit the generator's
        // oracle banks — that is what makes the zero-annotation arm work.
        use fieldswap_datagen::Domain;
        let bank = Domain::Earnings.generator().phrase_bank();
        let mut hits = 0;
        let mut total = 0;
        for (name, oracle) in &bank {
            if oracle.is_empty() {
                continue;
            }
            total += 1;
            let derived = phrases_from_name(name);
            let oracle_lower: Vec<String> = oracle.iter().map(|o| o.to_lowercase()).collect();
            if derived.iter().any(|d| oracle_lower.contains(d)) {
                hits += 1;
            }
        }
        assert!(
            hits * 2 >= total,
            "name-derived phrases hit only {hits}/{total} oracle banks"
        );
    }
}
