//! Feature extraction for the importance model: hashed token-text ids and
//! quantized relative-position buckets.

use fieldswap_docmodel::{BBox, Point};

/// Vocabulary size of the hashed text embedding table.
pub const TEXT_VOCAB: usize = 4096;
/// Number of buckets per relative-position axis.
pub const POS_AXIS_BUCKETS: usize = 16;
/// Size of the relative-position embedding table.
pub const POS_VOCAB: usize = POS_AXIS_BUCKETS * POS_AXIS_BUCKETS;
/// Size of the absolute candidate-position embedding table (page split
/// into an 8x8 grid).
pub const CAND_POS_VOCAB: usize = 64;

/// FNV-1a 64-bit hash of a string.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Hashed embedding id for a token's text. Case- and punctuation-
/// normalized so `"Total:"` and `"total"` share an id. Numeric tokens are
/// collapsed to their shape so that amounts share representation.
pub fn text_id(text: &str) -> usize {
    let norm: String = text
        .trim_matches(|c: char| c.is_ascii_punctuation())
        .to_lowercase();
    let key = if norm.chars().any(|c| c.is_ascii_digit()) {
        // Collapse digits: "3,308.62" -> "9,9.9"-style shape.
        let mut out = String::new();
        let mut last = '\0';
        for c in norm.chars() {
            let s = if c.is_ascii_digit() { '9' } else { c };
            if s != last || s != '9' {
                out.push(s);
            }
            last = s;
        }
        out
    } else {
        norm
    };
    (fnv1a(&key) % TEXT_VOCAB as u64) as usize
}

/// Quantizes one relative offset into `POS_AXIS_BUCKETS` signed-log
/// buckets: bucket 8 is "same position", buckets above/below encode
/// increasing positive/negative distance at log scale.
fn axis_bucket(d: f32) -> usize {
    let half = (POS_AXIS_BUCKETS / 2) as i64; // 8
    let mag = (d.abs() / 8.0).max(1.0).log2().round() as i64; // 0..~7
    let mag = mag.min(half - 1);
    let b = if d >= 0.0 { half + mag } else { half - 1 - mag };
    b.clamp(0, POS_AXIS_BUCKETS as i64 - 1) as usize
}

/// Relative-position embedding id for a neighbor at `n` relative to the
/// candidate center `c`.
pub fn rel_pos_id(c: Point, n: Point) -> usize {
    let bx = axis_bucket(n.x - c.x);
    let by = axis_bucket(n.y - c.y);
    by * POS_AXIS_BUCKETS + bx
}

/// Absolute candidate-position embedding id: which cell of an 8x8 page
/// grid the candidate center falls in (page nominally 1000 x 1400 units).
pub fn cand_pos_id(bbox: &BBox) -> usize {
    let c = bbox.center();
    let gx = ((c.x / 1000.0 * 8.0) as usize).min(7);
    let gy = ((c.y / 1400.0 * 8.0) as usize).min(7);
    gy * 8 + gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_id_case_and_punct_insensitive() {
        assert_eq!(text_id("Total:"), text_id("total"));
        assert_eq!(text_id("(Due)"), text_id("due"));
        assert_ne!(text_id("total"), text_id("subtotal"));
    }

    #[test]
    fn numeric_tokens_share_shape_id() {
        assert_eq!(text_id("$3,308.62"), text_id("$1,234.56"));
        assert_eq!(text_id("42"), text_id("7"));
        assert_ne!(text_id("42"), text_id("amount"));
    }

    #[test]
    fn text_id_in_vocab() {
        for s in ["a", "total due", "$9.99", "XyZ", ""] {
            assert!(text_id(s) < TEXT_VOCAB);
        }
    }

    #[test]
    fn rel_pos_distinguishes_directions() {
        let c = Point::new(500.0, 500.0);
        let left = rel_pos_id(c, Point::new(300.0, 500.0));
        let right = rel_pos_id(c, Point::new(700.0, 500.0));
        let above = rel_pos_id(c, Point::new(500.0, 300.0));
        let below = rel_pos_id(c, Point::new(500.0, 700.0));
        let all = [left, right, above, below];
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), 4, "{all:?}");
    }

    #[test]
    fn rel_pos_translation_invariant() {
        let a = rel_pos_id(Point::new(100.0, 100.0), Point::new(50.0, 100.0));
        let b = rel_pos_id(Point::new(900.0, 1300.0), Point::new(850.0, 1300.0));
        assert_eq!(a, b);
    }

    #[test]
    fn rel_pos_log_scale_merges_far_offsets() {
        let c = Point::new(0.0, 0.0);
        // 400 vs 500 away should often share a bucket; 8 vs 400 must not.
        let near = rel_pos_id(c, Point::new(8.0, 0.0));
        let far = rel_pos_id(c, Point::new(400.0, 0.0));
        assert_ne!(near, far);
        assert!(rel_pos_id(c, Point::new(400.0, 0.0)) < POS_VOCAB);
    }

    #[test]
    fn cand_pos_grid() {
        let tl = cand_pos_id(&BBox::new(0.0, 0.0, 10.0, 10.0));
        let br = cand_pos_id(&BBox::new(990.0, 1390.0, 1000.0, 1400.0));
        assert_eq!(tl, 0);
        assert_eq!(br, 63);
        // Out-of-range coordinates clamp.
        let out = cand_pos_id(&BBox::new(5000.0, 9000.0, 5010.0, 9010.0));
        assert_eq!(out, 63);
    }
}
