//! The key-phrase inference pipeline (paper Sections II-A2 through II-A5).
//!
//! Starting from the labeled examples of each field in the (small) target-
//! domain training set:
//!
//! 1. generate a positive candidate from every ground-truth span;
//! 2. score that candidate's neighboring tokens with the out-of-domain
//!    [`crate::model::ImportanceModel`];
//! 3. apply **sparsemax** over the scores; non-zero entries are the
//!    *important tokens*;
//! 4. expand each important token to its full OCR line, clean punctuation,
//!    and score the phrase with the mean token importance;
//! 5. exclude phrases containing tokens labeled as *any* field's ground
//!    truth (field values are variable; key phrases are consistent —
//!    Section II-A5);
//! 6. aggregate per (field, phrase) with a noisy-or (Eq. 1), drop phrases
//!    below threshold θ, and keep the top-k per field.

use crate::model::ImportanceModel;
use fieldswap_core::config::normalize_phrase;
use fieldswap_core::FieldSwapConfig;
use fieldswap_docmodel::{Corpus, Document, FieldId};
use fieldswap_nn::{sparsemax, Tape};
use std::collections::HashMap;

/// How per-candidate neighbor scores are sparsified into the set of
/// *important tokens* (the paper uses sparsemax; top-k is the ablation
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sparsify {
    /// Sparsemax projection; non-zero support = important tokens, with
    /// the sparsemax mass as the token score.
    Sparsemax,
    /// Keep the k highest-cosine neighbors, each scored by its cosine.
    TopK(usize),
}

/// How per-example phrase scores aggregate across examples of a field
/// (the paper uses the noisy-or of Eq. 1; mean is the ablation baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// `1 - exp(sum(log(1 - score)))` — Eq. 1.
    NoisyOr,
    /// Arithmetic mean of the per-example scores.
    Mean,
}

/// Tunable knobs of the inference pipeline (paper Section IV-B defaults:
/// `t = 100` neighbors, top `k = 3` phrases, `θ = 0.2`).
#[derive(Debug, Clone, Copy)]
pub struct InferenceConfig {
    /// Keep the top-k phrases per field.
    pub top_k: usize,
    /// Drop phrases whose aggregated importance falls below this.
    pub theta: f64,
    /// Cap on tokens a phrase may contain (OCR lines in dense tables can
    /// be long; real key phrases are short).
    pub max_phrase_tokens: usize,
    /// Important-token sparsification (ablation hook).
    pub sparsify: Sparsify,
    /// Cross-example aggregation (ablation hook).
    pub aggregation: Aggregation,
    /// Exclude phrases containing ground-truth value tokens
    /// (Section II-A5; disabling this is the ablation that admits
    /// spurious value-derived phrases such as "LLC").
    pub exclude_ground_truth: bool,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self {
            top_k: 3,
            theta: 0.2,
            max_phrase_tokens: 6,
            sparsify: Sparsify::Sparsemax,
            aggregation: Aggregation::NoisyOr,
            exclude_ground_truth: true,
        }
    }
}

/// A phrase ranked for one field.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPhrase {
    /// Normalized phrase text.
    pub phrase: String,
    /// Aggregated noisy-or importance (Eq. 1), in `[0, 1]`.
    pub importance: f64,
    /// Number of labeled examples that contributed this phrase.
    pub support: usize,
}

/// Infers ranked key phrases for every field of `corpus` using `model`.
/// Returns one ranked list per field id. Use
/// [`to_fieldswap_config`] to turn the result into a [`FieldSwapConfig`].
pub fn infer_key_phrases(
    model: &ImportanceModel,
    corpus: &Corpus,
    cfg: &InferenceConfig,
) -> Vec<Vec<RankedPhrase>> {
    let _span = fieldswap_obs::span("infer_key_phrases");
    // Candidate/phrase counts batched into two registry calls at the end.
    let mut obs_candidates = 0u64;
    // (field, phrase) -> accumulator, support count. For noisy-or the
    // accumulator holds sum(log(1 - score)); for the mean ablation it
    // holds sum(score).
    let mut acc: HashMap<(FieldId, String), (f64, usize)> = HashMap::new();
    // One tape for the whole sweep: each candidate's forward pass recycles
    // the previous candidate's tensor buffers.
    let mut tape = Tape::new();
    for doc in &corpus.documents {
        let labeled = doc.labeled_token_set();
        for a in &doc.annotations {
            obs_candidates += 1;
            for (phrase, score) in
                important_phrases(model, &mut tape, doc, a.start, a.end, &labeled, cfg)
            {
                let e = acc.entry((a.field, phrase)).or_insert((0.0, 0));
                match cfg.aggregation {
                    // Eq. 1 accumulates log(1 - score); clamp to keep the
                    // log finite when a phrase scores ~1.
                    Aggregation::NoisyOr => e.0 += (1.0 - score.min(0.999_999)).ln(),
                    Aggregation::Mean => e.0 += score,
                }
                e.1 += 1;
            }
        }
    }
    let mut per_field: Vec<Vec<RankedPhrase>> = vec![Vec::new(); corpus.schema.len()];
    for ((field, phrase), (accum, support)) in acc {
        let importance = match cfg.aggregation {
            Aggregation::NoisyOr => 1.0 - accum.exp(),
            Aggregation::Mean => accum / support as f64,
        };
        if importance >= cfg.theta {
            per_field[field as usize].push(RankedPhrase {
                phrase,
                importance,
                support,
            });
        }
    }
    for list in &mut per_field {
        list.sort_by(|a, b| {
            b.importance
                .total_cmp(&a.importance)
                .then(a.phrase.cmp(&b.phrase))
        });
        list.truncate(cfg.top_k);
    }
    if fieldswap_obs::metrics_enabled() {
        fieldswap_obs::counter_add("fieldswap_keyphrase_candidates_total", obs_candidates);
        fieldswap_obs::counter_add(
            "fieldswap_keyphrase_phrases_total",
            per_field.iter().map(|l| l.len() as u64).sum(),
        );
    }
    per_field
}

/// Converts ranked phrases into a [`FieldSwapConfig`] (phrases only; pair
/// construction is a separate concern).
pub fn to_fieldswap_config(ranked: &[Vec<RankedPhrase>]) -> FieldSwapConfig {
    let mut config = FieldSwapConfig::new(ranked.len());
    for (f, list) in ranked.iter().enumerate() {
        config.set_phrases(
            f as FieldId,
            list.iter().map(|r| r.phrase.clone()).collect(),
        );
    }
    config
}

/// Steps 2–5 for one labeled example: returns `(phrase, phrase score)`
/// pairs, where the phrase score is the mean importance of the phrase's
/// tokens.
fn important_phrases(
    model: &ImportanceModel,
    tape: &mut Tape,
    doc: &Document,
    start: u32,
    end: u32,
    labeled: &[bool],
    cfg: &InferenceConfig,
) -> Vec<(String, f64)> {
    let scored = model.neighbor_importance_on(tape, doc, start, end);
    if scored.is_empty() {
        return Vec::new();
    }
    // Sparsify the raw cosine scores into the important-token set. With
    // sparsemax (the paper's choice) the *mass* is the token importance:
    // it sums to 1 across the neighborhood, so a candidate with one
    // dominant anchor assigns it most of the mass, while diffuse
    // neighborhoods spread thin — which keeps the noisy-or aggregation
    // (Eq. 1) from saturating on frequently co-occurring but
    // non-indicative lines (column headers, page titles).
    let raw: Vec<f32> = scored.iter().map(|(_, s)| *s).collect();
    let mut token_score: HashMap<u32, f32> = HashMap::new();
    match cfg.sparsify {
        Sparsify::Sparsemax => {
            let mass = sparsemax(&raw);
            for ((tok, _), m) in scored.iter().zip(&mass) {
                if *m > 0.0 {
                    token_score.insert(*tok, *m);
                }
            }
        }
        Sparsify::TopK(k) => {
            let mut by_score = scored.clone();
            by_score.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (tok, s) in by_score.into_iter().take(k) {
                if s > 0.0 {
                    token_score.insert(tok, s);
                }
            }
        }
    }
    if token_score.is_empty() {
        return Vec::new();
    }

    // Expand each important token to its OCR line; one phrase per line.
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut seen_lines = Vec::new();
    for &tok in token_score.keys() {
        let Some(line_idx) = doc.line_of(tok) else {
            continue;
        };
        if seen_lines.contains(&line_idx) {
            continue;
        }
        seen_lines.push(line_idx);
        let line = &doc.lines[line_idx];
        if line.tokens.len() > cfg.max_phrase_tokens {
            continue;
        }
        // Ground-truth exclusion: values of any field cannot be part of a
        // key phrase.
        if cfg.exclude_ground_truth && line.tokens.iter().any(|&t| labeled[t as usize]) {
            continue;
        }
        let words: Vec<&str> = line
            .tokens
            .iter()
            .map(|&t| doc.tokens[t as usize].text.as_str())
            .collect();
        let phrase = normalize_phrase(&words.join(" "));
        if phrase.is_empty() {
            continue;
        }
        // Phrase importance = mean token importance over the line, where
        // non-important tokens contribute their (unselected) raw score of
        // zero mass — the paper averages token importance scores within
        // the phrase; tokens the model did not select contribute 0.
        let sum: f64 = line
            .tokens
            .iter()
            .map(|t| f64::from(token_score.get(t).copied().unwrap_or(0.0).max(0.0)))
            .sum();
        let mean = sum / line.tokens.len() as f64;
        if mean > 0.0 {
            out.push((phrase, mean.min(1.0)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use fieldswap_datagen::{generate, Domain};

    fn trained_model(train_docs: usize) -> (ImportanceModel, Corpus) {
        let corpus = generate(Domain::Invoices, 21, train_docs);
        let mut model = ImportanceModel::new(
            ModelConfig {
                epochs: 2,
                ..ModelConfig::tiny()
            },
            corpus.schema.len(),
            13,
        );
        model.train(&corpus, 5);
        (model, corpus)
    }

    #[test]
    fn infers_phrases_in_domain() {
        let (model, corpus) = trained_model(80);
        let ranked = infer_key_phrases(&model, &corpus, &InferenceConfig::default());
        assert_eq!(ranked.len(), corpus.schema.len());
        // total_due is anchored by a phrase in every vendor; with 80 docs
        // something must be inferred for it.
        let total = corpus.schema.field_id("total_due").unwrap();
        assert!(
            !ranked[total as usize].is_empty(),
            "no phrases inferred for total_due"
        );
        for list in &ranked {
            assert!(list.len() <= 3);
            for r in list {
                assert!((0.0..=1.0).contains(&r.importance));
                assert!(r.support >= 1);
                assert_eq!(r.phrase, normalize_phrase(&r.phrase));
            }
            // Ranked descending.
            for w in list.windows(2) {
                assert!(w[0].importance >= w[1].importance);
            }
        }
    }

    #[test]
    fn inferred_phrases_overlap_oracle_bank() {
        let (model, corpus) = trained_model(120);
        let ranked = infer_key_phrases(&model, &corpus, &InferenceConfig::default());
        let bank = Domain::Invoices.generator().phrase_bank();
        let mut hits = 0usize;
        let mut fields_with_phrases = 0usize;
        for (name, oracle) in &bank {
            if oracle.is_empty() {
                continue;
            }
            let fid = corpus.schema.field_id(name).unwrap();
            if ranked[fid as usize].is_empty() {
                continue;
            }
            fields_with_phrases += 1;
            let oracle_norm: Vec<String> = oracle.iter().map(|p| normalize_phrase(p)).collect();
            if ranked[fid as usize].iter().any(|r| {
                oracle_norm
                    .iter()
                    .any(|o| r.phrase.contains(o.as_str()) || o.contains(r.phrase.as_str()))
            }) {
                hits += 1;
            }
        }
        assert!(fields_with_phrases >= 3, "{fields_with_phrases}");
        assert!(
            hits * 2 >= fields_with_phrases,
            "inferred phrases should usually match the oracle bank: {hits}/{fields_with_phrases}"
        );
    }

    #[test]
    fn ground_truth_tokens_never_in_phrases() {
        let (model, corpus) = trained_model(60);
        let ranked = infer_key_phrases(&model, &corpus, &InferenceConfig::default());
        // Reconstruct all value texts; no inferred phrase may equal one.
        let mut value_texts = std::collections::HashSet::new();
        for d in &corpus.documents {
            for a in &d.annotations {
                value_texts.insert(normalize_phrase(&d.span_text(a.start, a.end)));
            }
        }
        for list in &ranked {
            for r in list {
                assert!(
                    !value_texts.contains(&r.phrase),
                    "phrase '{}' is a field value",
                    r.phrase
                );
            }
        }
    }

    #[test]
    fn theta_filters_low_importance() {
        let (model, corpus) = trained_model(40);
        let strict = InferenceConfig {
            theta: 0.99,
            ..InferenceConfig::default()
        };
        let ranked = infer_key_phrases(&model, &corpus, &strict);
        let total: usize = ranked.iter().map(Vec::len).sum();
        let loose = InferenceConfig {
            theta: 0.0,
            ..InferenceConfig::default()
        };
        let ranked_loose = infer_key_phrases(&model, &corpus, &loose);
        let total_loose: usize = ranked_loose.iter().map(Vec::len).sum();
        assert!(total <= total_loose);
    }

    #[test]
    fn to_config_preserves_order() {
        let ranked = vec![
            vec![
                RankedPhrase {
                    phrase: "amount due".into(),
                    importance: 0.9,
                    support: 4,
                },
                RankedPhrase {
                    phrase: "total".into(),
                    importance: 0.5,
                    support: 2,
                },
            ],
            vec![],
        ];
        let config = to_fieldswap_config(&ranked);
        assert_eq!(
            config.phrases(0),
            &["amount due".to_string(), "total".to_string()]
        );
        assert!(!config.has_phrases(1));
    }

    #[test]
    fn cross_domain_transfer_produces_phrases() {
        // Pre-train on invoices, infer on Earnings — the paper's transfer
        // setting.
        let (model, _) = trained_model(80);
        let target = generate(Domain::Earnings, 33, 30);
        // The model's head arity differs from the target schema; only the
        // encodings are used, so inference must still work.
        let ranked = infer_key_phrases(&model, &target, &InferenceConfig::default());
        let total: usize = ranked.iter().map(Vec::len).sum();
        assert!(total > 0, "transfer produced no phrases at all");
    }
}
