//! Planar geometry primitives: points, axis-aligned bounding boxes, and the
//! paper's *off-axis distance* metric.
//!
//! All coordinates are in an abstract page space with the origin at the
//! top-left corner: `x` grows rightwards, `y` grows downwards. The corpus
//! generators lay out pages nominally 1000 units wide.

use serde::{Deserialize, Serialize};

/// A point in page space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (grows rightwards).
    pub x: f32,
    /// Vertical coordinate (grows downwards).
    pub y: f32,
}

impl Point {
    /// Creates a point from `x`/`y` coordinates.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn euclidean(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// The paper's off-axis distance (Section II-A2): `|ax - bx| * |ay - by|`.
///
/// Points that share an x- or y-axis have distance 0; diagonally displaced
/// points have a large distance. This is the metric used to pick the `t`
/// nearest *neighboring tokens* of a field-instance candidate, since the
/// tokens that identify a field (its key phrase) are almost always
/// horizontally or vertically aligned with the field's value.
pub fn off_axis_distance(a: Point, b: Point) -> f32 {
    (a.x - b.x).abs() * (a.y - b.y).abs()
}

/// An axis-aligned bounding box. `x0 <= x1` and `y0 <= y1` by construction
/// through [`BBox::new`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x0: f32,
    /// Top edge.
    pub y0: f32,
    /// Right edge (`>= x0`).
    pub x1: f32,
    /// Bottom edge (`>= y0`).
    pub y1: f32,
}

impl BBox {
    /// Creates a bounding box, normalizing the corner order so that
    /// `(x0, y0)` is the top-left and `(x1, y1)` the bottom-right corner.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Self {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// A zero-area box located at `p`.
    pub fn at_point(p: Point) -> Self {
        Self::new(p.x, p.y, p.x, p.y)
    }

    /// Box width (always non-negative).
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Box height (always non-negative).
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// Area of the box.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Center point of the box.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Whether `p` lies inside the box (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Whether this box and `other` overlap (inclusive of shared edges).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Length of the vertical overlap between the two boxes' y-extents, or 0
    /// if they do not overlap vertically. Line detection groups tokens whose
    /// vertical overlap ratio is high.
    pub fn y_overlap(&self, other: &BBox) -> f32 {
        (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0)
    }

    /// Vertical intersection-over-union of the two boxes' y-extents, in
    /// `[0, 1]`. Returns 0 when both boxes have zero height.
    pub fn y_iou(&self, other: &BBox) -> f32 {
        let inter = self.y_overlap(other);
        let union = (self.y1.max(other.y1) - self.y0.min(other.y0)).max(f32::EPSILON);
        inter / union
    }

    /// Horizontal gap between the two boxes (0 when they overlap in x).
    pub fn x_gap(&self, other: &BBox) -> f32 {
        if self.x1 < other.x0 {
            other.x0 - self.x1
        } else if other.x1 < self.x0 {
            self.x0 - other.x1
        } else {
            0.0
        }
    }

    /// Translates the box by `(dx, dy)`.
    pub fn translated(&self, dx: f32, dy: f32) -> BBox {
        BBox {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bbox_normalizes_corners() {
        let b = BBox::new(10.0, 20.0, 2.0, 5.0);
        assert_eq!(b.x0, 2.0);
        assert_eq!(b.y0, 5.0);
        assert_eq!(b.x1, 10.0);
        assert_eq!(b.y1, 20.0);
    }

    #[test]
    fn center_is_midpoint() {
        let b = BBox::new(0.0, 0.0, 10.0, 4.0);
        let c = b.center();
        assert_eq!(c, Point::new(5.0, 2.0));
    }

    #[test]
    fn off_axis_zero_when_axis_aligned() {
        let a = Point::new(5.0, 7.0);
        assert_eq!(off_axis_distance(a, Point::new(5.0, 100.0)), 0.0);
        assert_eq!(off_axis_distance(a, Point::new(-30.0, 7.0)), 0.0);
    }

    #[test]
    fn off_axis_large_when_diagonal() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 10.0);
        assert_eq!(off_axis_distance(a, b), 100.0);
        // A closer-by-euclidean but diagonal point can be farther by
        // off-axis distance than a distant but aligned point.
        let aligned_far = Point::new(0.0, 500.0);
        assert!(off_axis_distance(a, aligned_far) < off_axis_distance(a, b));
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(!b.contains(Point::new(10.1, 10.0)));
    }

    #[test]
    fn intersects_shared_edge() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&b));
        let c = BBox::new(10.5, 0.0, 20.0, 10.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_covers_both() {
        let a = BBox::new(0.0, 0.0, 5.0, 5.0);
        let b = BBox::new(3.0, -2.0, 9.0, 4.0);
        let u = a.union(&b);
        assert_eq!(u, BBox::new(0.0, -2.0, 9.0, 5.0));
    }

    #[test]
    fn y_overlap_and_iou() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(50.0, 5.0, 60.0, 15.0);
        assert_eq!(a.y_overlap(&b), 5.0);
        assert!((a.y_iou(&b) - 5.0 / 15.0).abs() < 1e-6);
        let c = BBox::new(0.0, 20.0, 10.0, 30.0);
        assert_eq!(a.y_overlap(&c), 0.0);
        assert_eq!(a.y_iou(&c), 0.0);
    }

    #[test]
    fn x_gap_directions() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let right = BBox::new(15.0, 0.0, 20.0, 10.0);
        let left = BBox::new(-20.0, 0.0, -12.0, 10.0);
        let overlapping = BBox::new(5.0, 0.0, 20.0, 10.0);
        assert_eq!(a.x_gap(&right), 5.0);
        assert_eq!(a.x_gap(&left), 12.0);
        assert_eq!(a.x_gap(&overlapping), 0.0);
    }

    #[test]
    fn translated_moves_box() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0).translated(3.0, -2.0);
        assert_eq!(a, BBox::new(3.0, -2.0, 13.0, 8.0));
    }

    proptest! {
        #[test]
        fn prop_bbox_invariant(x0 in -1e3f32..1e3, y0 in -1e3f32..1e3,
                               x1 in -1e3f32..1e3, y1 in -1e3f32..1e3) {
            let b = BBox::new(x0, y0, x1, y1);
            prop_assert!(b.x0 <= b.x1);
            prop_assert!(b.y0 <= b.y1);
            prop_assert!(b.width() >= 0.0);
            prop_assert!(b.height() >= 0.0);
            prop_assert!(b.contains(b.center()));
        }

        #[test]
        fn prop_off_axis_symmetric(ax in -1e3f32..1e3, ay in -1e3f32..1e3,
                                   bx in -1e3f32..1e3, by in -1e3f32..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let d1 = off_axis_distance(a, b);
            let d2 = off_axis_distance(b, a);
            prop_assert!((d1 - d2).abs() <= 1e-3 * d1.abs().max(1.0));
            prop_assert!(d1 >= 0.0);
        }

        #[test]
        fn prop_union_contains_centers(a0 in -100f32..100.0, a1 in -100f32..100.0,
                                       b0 in -100f32..100.0, b1 in -100f32..100.0) {
            let a = BBox::new(a0, a0, a1, a1);
            let b = BBox::new(b0, b0, b1, b1);
            let u = a.union(&b);
            prop_assert!(u.contains(a.center()));
            prop_assert!(u.contains(b.center()));
        }

        #[test]
        fn prop_y_iou_bounded(a0 in -100f32..100.0, a1 in -100f32..100.0,
                              b0 in -100f32..100.0, b1 in -100f32..100.0) {
            let a = BBox::new(0.0, a0, 10.0, a1);
            let b = BBox::new(0.0, b0, 10.0, b1);
            let iou = a.y_iou(&b);
            prop_assert!((0.0..=1.0).contains(&iou));
        }
    }
}
