#![warn(missing_docs)]

//! # fieldswap-docmodel
//!
//! The shared document model for the FieldSwap reproduction.
//!
//! Form-like documents (invoices, paystubs, brokerage statements, ...) are
//! modeled as a flat list of positioned [`Token`]s, grouped into visual
//! [`Line`]s, annotated with labeled [`EntitySpan`]s that tie token ranges to
//! fields of a [`Schema`]. Every other crate in the workspace — the simulated
//! OCR layer, the corpus generators, the key-phrase inference pipeline, the
//! FieldSwap augmenter, and the sequence-labeling backbone — speaks this
//! vocabulary.
//!
//! The geometry module also provides the paper's *off-axis distance*
//! (Section II-A2): `|ax - bx| * |ay - by|`, which is ~0 for horizontally or
//! vertically aligned points and large for diagonally displaced ones.

pub mod corpus;
pub mod document;
pub mod geometry;
pub mod label;
pub mod line;
pub mod schema;
pub mod token;

pub use corpus::{Corpus, SplitSpec};
pub use document::{Document, DocumentBuilder, NeighborMetric, SanitizeReport};
pub use geometry::{off_axis_distance, BBox, Point};
pub use label::EntitySpan;
pub use line::Line;
pub use schema::{BaseType, FieldDef, FieldId, Schema};
pub use token::{Token, TokenId};

// Documents and corpora cross thread boundaries in the parallel
// experiment harness; keep them `Send + Sync` (no interior mutability,
// no `Rc`). Compile-time check so a regression fails here, not in a
// downstream crate.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Corpus>();
    assert_sync_send::<Document>();
    assert_sync_send::<Schema>();
};
