//! Documents: positioned tokens + detected lines + labeled entity spans,
//! plus a builder used by the corpus generators and the FieldSwap engine.

use crate::geometry::{off_axis_distance, BBox};
use crate::label::EntitySpan;
use crate::line::Line;
use crate::schema::FieldId;
use crate::token::Token;
use serde::{Deserialize, Serialize};

/// Distance metric for neighbor selection. The paper uses [`NeighborMetric::OffAxis`]
/// (`|dx| * |dy|`, favoring horizontally/vertically aligned tokens);
/// Euclidean is the ablation baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborMetric {
    /// The paper's `|dx| * |dy|` metric.
    OffAxis,
    /// Straight-line distance.
    Euclidean,
}

/// A single form-like document as seen after OCR: tokens with bounding
/// boxes, line groupings, and (for labeled corpora) entity spans.
///
/// Invariants maintained by [`DocumentBuilder`] and the OCR layer:
/// * `annotations` are sorted by `start` and never overlap;
/// * every annotation's token range lies within `tokens`;
/// * every line's token ids lie within `tokens`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Document {
    /// Stable identifier, unique within a corpus (e.g. `"earnings-00042"`).
    pub id: String,
    /// All OCR tokens in reading order (top-to-bottom, left-to-right).
    pub tokens: Vec<Token>,
    /// OCR line groupings over `tokens`.
    pub lines: Vec<Line>,
    /// Labeled field instances. Empty for unlabeled documents.
    pub annotations: Vec<EntitySpan>,
}

impl Document {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The annotations labeling `field`, in document order.
    pub fn spans_of(&self, field: FieldId) -> impl Iterator<Item = &EntitySpan> {
        self.annotations.iter().filter(move |s| s.field == field)
    }

    /// Whether any annotation labels `field`.
    pub fn has_field(&self, field: FieldId) -> bool {
        self.annotations.iter().any(|s| s.field == field)
    }

    /// The set of distinct fields annotated in this document, sorted.
    pub fn present_fields(&self) -> Vec<FieldId> {
        let mut fields: Vec<FieldId> = self.annotations.iter().map(|s| s.field).collect();
        fields.sort_unstable();
        fields.dedup();
        fields
    }

    /// The text of the token range `[start, end)` joined with single spaces.
    pub fn span_text(&self, start: u32, end: u32) -> String {
        self.tokens[start as usize..end as usize]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Union bounding box of the token range `[start, end)`.
    ///
    /// # Panics
    /// Panics on an empty or out-of-range span.
    pub fn span_bbox(&self, start: u32, end: u32) -> BBox {
        assert!(start < end, "empty span");
        let mut b = self.tokens[start as usize].bbox;
        for t in &self.tokens[start as usize + 1..end as usize] {
            b = b.union(&t.bbox);
        }
        b
    }

    /// The line index containing `token`, if lines were detected.
    pub fn line_of(&self, token: u32) -> Option<usize> {
        self.lines.iter().position(|l| l.contains(token))
    }

    /// Ids of tokens labeled by *any* annotation. Used by key-phrase
    /// inference to exclude field values from candidate key phrases
    /// (Section II-A5). Annotation indices beyond the token range are
    /// ignored rather than panicking, so the mask is safe to build for
    /// documents that have not passed [`Document::validate`] yet.
    pub fn labeled_token_set(&self) -> Vec<bool> {
        let mut mask = vec![false; self.tokens.len()];
        for s in &self.annotations {
            for t in s.start..s.end.min(self.tokens.len() as u32) {
                mask[t as usize] = true;
            }
        }
        mask
    }

    /// The `t` nearest tokens to `anchor` (a token range's center) by
    /// off-axis distance, excluding tokens in `[ex_start, ex_end)`.
    /// Returned ids are sorted by increasing distance.
    pub fn neighbors_by_off_axis(&self, ex_start: u32, ex_end: u32, t: usize) -> Vec<u32> {
        self.neighbors_by_metric(ex_start, ex_end, t, NeighborMetric::OffAxis)
    }

    /// The `t` nearest tokens under a chosen distance metric — the
    /// ablation hook for the paper's off-axis choice (Section II-A2).
    pub fn neighbors_by_metric(
        &self,
        ex_start: u32,
        ex_end: u32,
        t: usize,
        metric: NeighborMetric,
    ) -> Vec<u32> {
        let anchor = self.span_bbox(ex_start, ex_end).center();
        let mut scored: Vec<(f32, u32)> = self
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u32) < ex_start || (*i as u32) >= ex_end)
            .map(|(i, tok)| {
                let c = tok.bbox.center();
                let d = match metric {
                    NeighborMetric::OffAxis => off_axis_distance(anchor, c),
                    NeighborMetric::Euclidean => anchor.euclidean(&c),
                };
                (d, i as u32)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(t);
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// Checks the structural invariants listed on the type, plus geometry
    /// and text sanity: every token has non-empty text and a finite,
    /// non-inverted bounding box; every annotation is a non-empty in-range
    /// span; annotations never overlap; line token ids are in range. Used
    /// by tests, debug assertions in the augmentation engine, and the
    /// harness ingestion/sanitize layer.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.tokens.len() as u32;
        for (i, t) in self.tokens.iter().enumerate() {
            if t.text.is_empty() {
                return Err(format!("token {i} has empty text"));
            }
            if !bbox_is_finite(&t.bbox) {
                return Err(format!("token {i} has a non-finite bounding box"));
            }
            if t.bbox.x1 < t.bbox.x0 || t.bbox.y1 < t.bbox.y0 {
                return Err(format!("token {i} has a negative-extent bounding box"));
            }
        }
        let mut prev_end = 0u32;
        for (i, s) in self.annotations.iter().enumerate() {
            if s.start >= s.end {
                return Err(format!(
                    "annotation {i} span {}..{} is empty",
                    s.start, s.end
                ));
            }
            if s.end > n {
                return Err(format!(
                    "annotation {i} range {}..{} exceeds {n}",
                    s.start, s.end
                ));
            }
            if i > 0 && s.start < prev_end {
                return Err(format!(
                    "annotation {i} overlaps previous (start {})",
                    s.start
                ));
            }
            prev_end = s.end;
        }
        for (i, l) in self.lines.iter().enumerate() {
            if l.tokens.is_empty() {
                return Err(format!("line {i} is empty"));
            }
            if l.tokens.iter().any(|&t| t >= n) {
                return Err(format!("line {i} references token out of range"));
            }
        }
        Ok(())
    }

    /// Repairs a document that fails [`Document::validate`] in place,
    /// keeping token indices stable so annotations and lines stay
    /// meaningful:
    ///
    /// * non-finite bounding-box coordinates are replaced by `0.0` and
    ///   inverted extents re-normalized (token boxes and line boxes);
    /// * empty token texts get a `"?"` placeholder (the token keeps its id);
    /// * empty, out-of-range, or overlapping annotations are dropped
    ///   (annotations are re-sorted by `(start, end)` first, keeping the
    ///   earliest of an overlapping group);
    /// * empty lines and lines referencing out-of-range tokens are dropped.
    ///
    /// A document that already validates is left byte-identical. Returns a
    /// report of the repairs made; after `sanitize`, `validate()` is
    /// guaranteed to pass.
    pub fn sanitize(&mut self) -> SanitizeReport {
        let mut report = SanitizeReport::default();
        if self.validate().is_ok() {
            return report;
        }
        for t in &mut self.tokens {
            if !bbox_is_finite(&t.bbox) || t.bbox.x1 < t.bbox.x0 || t.bbox.y1 < t.bbox.y0 {
                t.bbox = repair_bbox(&t.bbox);
                report.repaired_token_boxes += 1;
            }
            if t.text.is_empty() {
                t.text.push('?');
                report.repaired_empty_tokens += 1;
            }
        }
        let n = self.tokens.len() as u32;
        self.annotations.sort_by_key(|s| (s.start, s.end));
        let before = self.annotations.len();
        let mut prev_end = 0u32;
        self.annotations.retain(|s| {
            let ok = s.start < s.end && s.end <= n && s.start >= prev_end;
            if ok {
                prev_end = s.end;
            }
            ok
        });
        report.dropped_annotations += before - self.annotations.len();
        let before = self.lines.len();
        self.lines
            .retain(|l| !l.tokens.is_empty() && l.tokens.iter().all(|&t| t < n));
        report.dropped_lines += before - self.lines.len();
        for l in &mut self.lines {
            if !bbox_is_finite(&l.bbox) || l.bbox.x1 < l.bbox.x0 || l.bbox.y1 < l.bbox.y0 {
                l.bbox = repair_bbox(&l.bbox);
                report.repaired_line_boxes += 1;
            }
        }
        debug_assert!(self.validate().is_ok());
        report
    }
}

fn bbox_is_finite(b: &BBox) -> bool {
    b.x0.is_finite() && b.y0.is_finite() && b.x1.is_finite() && b.y1.is_finite()
}

fn repair_bbox(b: &BBox) -> BBox {
    let fix = |v: f32| if v.is_finite() { v } else { 0.0 };
    BBox::new(fix(b.x0), fix(b.y0), fix(b.x1), fix(b.y1))
}

/// What [`Document::sanitize`] repaired. All counters are zero for a
/// document that already passed [`Document::validate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizeReport {
    /// Token bounding boxes with non-finite coordinates or inverted extents.
    pub repaired_token_boxes: usize,
    /// Tokens whose empty text was replaced by a placeholder.
    pub repaired_empty_tokens: usize,
    /// Annotations dropped (empty, out of range, or overlapping).
    pub dropped_annotations: usize,
    /// Lines dropped (empty or referencing out-of-range tokens).
    pub dropped_lines: usize,
    /// Line bounding boxes repaired.
    pub repaired_line_boxes: usize,
}

impl SanitizeReport {
    /// Whether nothing needed repair.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Total number of individual repairs.
    pub fn total(&self) -> usize {
        self.repaired_token_boxes
            + self.repaired_empty_tokens
            + self.dropped_annotations
            + self.dropped_lines
            + self.repaired_line_boxes
    }

    /// Accumulates `other` into `self` (corpus-level aggregation).
    pub fn absorb(&mut self, other: &SanitizeReport) {
        self.repaired_token_boxes += other.repaired_token_boxes;
        self.repaired_empty_tokens += other.repaired_empty_tokens;
        self.dropped_annotations += other.dropped_annotations;
        self.dropped_lines += other.dropped_lines;
        self.repaired_line_boxes += other.repaired_line_boxes;
    }
}

/// Incremental builder for [`Document`]s. Generators place tokens and attach
/// labels; annotations are sorted and checked on [`DocumentBuilder::build`].
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    id: String,
    tokens: Vec<Token>,
    annotations: Vec<EntitySpan>,
}

impl DocumentBuilder {
    /// Starts a builder for a document with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            tokens: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Number of tokens added so far (the id the next token will get).
    pub fn next_token_id(&self) -> u32 {
        self.tokens.len() as u32
    }

    /// Appends a token, returning its id.
    pub fn push_token(&mut self, token: Token) -> u32 {
        let id = self.tokens.len() as u32;
        self.tokens.push(token);
        id
    }

    /// Appends a labeled span over already-pushed tokens.
    pub fn push_annotation(&mut self, span: EntitySpan) {
        debug_assert!(span.end <= self.tokens.len() as u32);
        self.annotations.push(span);
    }

    /// Finishes the document. Lines are left empty — the OCR layer detects
    /// them from geometry.
    ///
    /// # Panics
    /// Panics if annotations overlap or exceed the token range (generator
    /// bugs).
    pub fn build(mut self) -> Document {
        self.annotations.sort_by_key(|s| (s.start, s.end));
        let doc = Document {
            id: self.id,
            tokens: self.tokens,
            lines: Vec::new(),
            annotations: self.annotations,
        };
        if let Err(e) = doc.validate() {
            panic!("invalid document from builder: {e}");
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn tok(text: &str, x: f32, y: f32) -> Token {
        Token::new(
            text,
            BBox::new(x, y, x + 10.0 * text.len() as f32, y + 12.0),
        )
    }

    fn sample() -> Document {
        let mut b = DocumentBuilder::new("doc-1");
        b.push_token(tok("Base", 10.0, 10.0)); // 0
        b.push_token(tok("Salary", 60.0, 10.0)); // 1
        b.push_token(tok("$3,308.62", 300.0, 10.0)); // 2
        b.push_token(tok("Overtime", 10.0, 40.0)); // 3
        b.push_token(tok("$120.00", 300.0, 40.0)); // 4
        b.push_annotation(EntitySpan::new(0, 2, 3));
        b.push_annotation(EntitySpan::new(1, 4, 5));
        b.build()
    }

    #[test]
    fn builder_sorts_and_validates() {
        let d = sample();
        assert_eq!(d.len(), 5);
        assert_eq!(d.annotations.len(), 2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn span_text_joins() {
        let d = sample();
        assert_eq!(d.span_text(0, 2), "Base Salary");
        assert_eq!(d.span_text(2, 3), "$3,308.62");
    }

    #[test]
    fn span_bbox_unions() {
        let d = sample();
        let b = d.span_bbox(0, 2);
        assert_eq!(b.x0, 10.0);
        assert!(b.x1 >= 60.0);
    }

    #[test]
    fn field_queries() {
        let d = sample();
        assert!(d.has_field(0));
        assert!(d.has_field(1));
        assert!(!d.has_field(2));
        assert_eq!(d.present_fields(), vec![0, 1]);
        assert_eq!(d.spans_of(0).count(), 1);
    }

    #[test]
    fn labeled_token_set_marks_values() {
        let d = sample();
        assert_eq!(d.labeled_token_set(), vec![false, false, true, false, true]);
    }

    #[test]
    fn neighbors_prefer_axis_aligned() {
        let d = sample();
        // Neighbors of the salary amount (token 2). "Overtime"(3) is
        // diagonal; $120.00(4) is vertically aligned; Base/Salary(0,1) are
        // horizontally aligned.
        let n = d.neighbors_by_off_axis(2, 3, 3);
        assert_eq!(n.len(), 3);
        assert!(n.contains(&0) || n.contains(&1));
        assert!(n.contains(&4));
        // Candidate's own tokens excluded.
        assert!(!n.contains(&2));
    }

    #[test]
    fn neighbors_truncate_to_t() {
        let d = sample();
        assert_eq!(d.neighbors_by_off_axis(2, 3, 2).len(), 2);
        assert_eq!(d.neighbors_by_off_axis(2, 3, 100).len(), 4);
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut d = sample();
        d.annotations = vec![EntitySpan::new(0, 0, 3), EntitySpan::new(1, 2, 4)];
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut d = sample();
        d.annotations = vec![EntitySpan::new(0, 4, 9)];
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_token_text() {
        let mut d = sample();
        d.tokens[1].text.clear();
        assert!(d.validate().unwrap_err().contains("empty text"));
    }

    #[test]
    fn validate_rejects_non_finite_box() {
        let mut d = sample();
        d.tokens[0].bbox.x1 = f32::NAN;
        assert!(d.validate().unwrap_err().contains("non-finite"));
        let mut d = sample();
        d.tokens[2].bbox.y0 = f32::INFINITY;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_inverted_box() {
        let mut d = sample();
        // Bypass BBox::new normalization by direct field writes.
        d.tokens[0].bbox.x0 = 50.0;
        d.tokens[0].bbox.x1 = 10.0;
        assert!(d.validate().unwrap_err().contains("negative-extent"));
    }

    #[test]
    fn validate_rejects_empty_span() {
        let mut d = sample();
        d.annotations = vec![EntitySpan {
            field: 0,
            start: 2,
            end: 2,
        }];
        assert!(d.validate().unwrap_err().contains("empty"));
    }

    #[test]
    fn validate_rejects_empty_line() {
        let mut d = sample();
        d.lines = vec![Line {
            tokens: vec![],
            bbox: BBox::default(),
        }];
        assert!(d.validate().is_err());
    }

    #[test]
    fn sanitize_is_noop_on_valid_documents() {
        let mut d = sample();
        let before = d.clone();
        let report = d.sanitize();
        assert!(report.is_clean());
        assert_eq!(d, before);
    }

    #[test]
    fn sanitize_repairs_degenerate_document() {
        let mut d = sample();
        d.tokens[0].bbox.x1 = f32::NAN;
        d.tokens[1].text.clear();
        d.annotations = vec![
            EntitySpan {
                field: 0,
                start: 2,
                end: 3,
            },
            EntitySpan {
                field: 1,
                start: 2,
                end: 4,
            }, // overlaps previous
            EntitySpan {
                field: 1,
                start: 4,
                end: 4,
            }, // empty
            EntitySpan {
                field: 1,
                start: 4,
                end: 99,
            }, // out of range
        ];
        d.lines = vec![Line {
            tokens: vec![0, 99],
            bbox: BBox::default(),
        }];
        let report = d.sanitize();
        assert!(d.validate().is_ok(), "{:?}", d.validate());
        assert_eq!(report.repaired_token_boxes, 1);
        assert_eq!(report.repaired_empty_tokens, 1);
        assert_eq!(report.dropped_annotations, 3);
        assert_eq!(report.dropped_lines, 1);
        assert_eq!(d.tokens[1].text, "?");
        assert_eq!(d.annotations.len(), 1);
        // Token count unchanged: repairs are index-stable.
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn labeled_token_set_ignores_out_of_range_annotations() {
        let mut d = sample();
        d.annotations = vec![EntitySpan {
            field: 0,
            start: 3,
            end: 50,
        }];
        assert_eq!(d.labeled_token_set(), vec![false, false, false, true, true]);
    }

    #[test]
    fn line_of_finds_line() {
        let mut d = sample();
        d.lines = vec![
            Line::new(vec![0, 1, 2], BBox::new(10.0, 10.0, 390.0, 22.0)),
            Line::new(vec![3, 4], BBox::new(10.0, 40.0, 370.0, 52.0)),
        ];
        assert_eq!(d.line_of(1), Some(0));
        assert_eq!(d.line_of(4), Some(1));
    }

    #[test]
    fn euclidean_vs_off_axis_sanity() {
        // Confirms the doc-level neighbor ordering actually uses off-axis.
        let a = Point::new(0.0, 0.0);
        let close_diag = Point::new(20.0, 20.0); // euclid ~28, off-axis 400
        let far_aligned = Point::new(0.0, 200.0); // euclid 200, off-axis 0
        assert!(
            off_axis_distance(a, far_aligned) < off_axis_distance(a, close_diag),
            "aligned beats diagonal under off-axis"
        );
    }
}
