//! Ground-truth and predicted annotations: entity spans tying contiguous
//! token ranges to schema fields.

use crate::schema::FieldId;
use serde::{Deserialize, Serialize};

/// A labeled field instance: the half-open token range `[start, end)` holds
/// the value of `field`. Spans never overlap within a document and are kept
/// sorted by `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntitySpan {
    /// The labeled field.
    pub field: FieldId,
    /// First token index of the value (inclusive).
    pub start: u32,
    /// One-past-last token index of the value (exclusive).
    pub end: u32,
}

impl EntitySpan {
    /// Creates a span.
    ///
    /// # Panics
    /// Panics when `start >= end` — empty spans are never meaningful.
    pub fn new(field: FieldId, start: u32, end: u32) -> Self {
        assert!(start < end, "empty entity span {start}..{end}");
        Self { field, start, end }
    }

    /// Number of tokens covered by the span.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Spans are non-empty by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `token` lies inside the span.
    pub fn contains(&self, token: u32) -> bool {
        token >= self.start && token < self.end
    }

    /// Whether the two spans cover at least one common token.
    pub fn overlaps(&self, other: &EntitySpan) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_contains() {
        let s = EntitySpan::new(3, 5, 8);
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(!s.contains(4));
    }

    #[test]
    fn overlap_cases() {
        let a = EntitySpan::new(0, 2, 6);
        assert!(a.overlaps(&EntitySpan::new(1, 5, 9)));
        assert!(a.overlaps(&EntitySpan::new(1, 3, 4)));
        assert!(!a.overlaps(&EntitySpan::new(1, 6, 9)));
        assert!(!a.overlaps(&EntitySpan::new(1, 0, 2)));
    }

    #[test]
    #[should_panic(expected = "empty entity span")]
    fn empty_span_panics() {
        EntitySpan::new(0, 4, 4);
    }
}
