//! Corpora: collections of documents sharing one schema, plus the sampling
//! helpers the experiment protocol needs (random training subsets of size N
//! drawn from a larger pool).

use crate::document::Document;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// A collection of documents of one document type, together with the
/// domain's schema. The paper splits each domain into a large training pool
/// and a fixed hold-out test set (Table I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// The domain schema shared by all documents.
    pub schema: Schema,
    /// Documents in the corpus.
    pub documents: Vec<Document>,
}

impl Corpus {
    /// Creates a corpus.
    pub fn new(schema: Schema, documents: Vec<Document>) -> Self {
        Self { schema, documents }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Fraction of documents that contain at least one instance of `field`
    /// — the "Frequency" column of the paper's Table IV.
    pub fn field_frequency(&self, field: crate::schema::FieldId) -> f64 {
        if self.documents.is_empty() {
            return 0.0;
        }
        let with = self.documents.iter().filter(|d| d.has_field(field)).count();
        with as f64 / self.documents.len() as f64
    }

    /// Selects the documents at `indices` into a new corpus (cloning them).
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Corpus {
        Corpus {
            schema: self.schema.clone(),
            documents: indices.iter().map(|&i| self.documents[i].clone()).collect(),
        }
    }

    /// Total number of annotations across all documents.
    pub fn total_annotations(&self) -> usize {
        self.documents.iter().map(|d| d.annotations.len()).sum()
    }

    /// Runs [`Document::sanitize`] over every document, aggregating the
    /// repairs. Documents that already pass [`Document::validate`] are left
    /// byte-identical, so sanitizing a clean corpus is a no-op. Returns the
    /// aggregated report plus the number of documents that needed repair.
    pub fn sanitize(&mut self) -> (crate::document::SanitizeReport, usize) {
        let mut total = crate::document::SanitizeReport::default();
        let mut repaired = 0usize;
        for d in &mut self.documents {
            let r = d.sanitize();
            if !r.is_clean() {
                repaired += 1;
                total.absorb(&r);
            }
        }
        (total, repaired)
    }
}

/// Specification of a deterministic train/validation split, mirroring the
/// paper's 90%/10% fine-tuning split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Fraction of documents assigned to the training part, in `(0, 1]`.
    pub train_fraction: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        Self {
            train_fraction: 0.9,
        }
    }
}

impl SplitSpec {
    /// Splits `n` document indices (already shuffled by the caller) into
    /// train and validation index lists. The train part always receives at
    /// least one document; the validation part receives the remainder (which
    /// may be empty for tiny `n`).
    pub fn split(&self, n: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(self.train_fraction > 0.0 && self.train_fraction <= 1.0);
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let train_n = ((n as f64 * self.train_fraction).round() as usize).clamp(1, n);
        ((0..train_n).collect(), (train_n..n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;
    use crate::geometry::BBox;
    use crate::label::EntitySpan;
    use crate::schema::{BaseType, FieldDef};
    use crate::token::Token;

    fn doc(id: &str, fields: &[u16]) -> Document {
        let mut b = DocumentBuilder::new(id);
        for (i, f) in fields.iter().enumerate() {
            let y = 20.0 * i as f32;
            b.push_token(Token::new("v", BBox::new(0.0, y, 10.0, y + 10.0)));
            b.push_annotation(EntitySpan::new(*f, i as u32, i as u32 + 1));
        }
        if fields.is_empty() {
            b.push_token(Token::new("x", BBox::new(0.0, 0.0, 10.0, 10.0)));
        }
        b.build()
    }

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldDef::new("a", BaseType::Money),
                FieldDef::new("b", BaseType::Date),
            ],
        )
    }

    #[test]
    fn field_frequency_counts_documents_not_instances() {
        let c = Corpus::new(
            schema(),
            vec![
                doc("1", &[0, 0]),
                doc("2", &[0]),
                doc("3", &[1]),
                doc("4", &[]),
            ],
        );
        assert!((c.field_frequency(0) - 0.5).abs() < 1e-12);
        assert!((c.field_frequency(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_frequency_is_zero() {
        let c = Corpus::new(schema(), vec![]);
        assert_eq!(c.field_frequency(0), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn subset_clones_selected() {
        let c = Corpus::new(
            schema(),
            vec![doc("1", &[0]), doc("2", &[1]), doc("3", &[])],
        );
        let s = c.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.documents[0].id, "3");
        assert_eq!(s.documents[1].id, "1");
    }

    #[test]
    fn total_annotations_sums() {
        let c = Corpus::new(schema(), vec![doc("1", &[0, 1]), doc("2", &[0])]);
        assert_eq!(c.total_annotations(), 3);
    }

    #[test]
    fn corpus_sanitize_reports_per_document_repairs() {
        let mut c = Corpus::new(schema(), vec![doc("1", &[0]), doc("2", &[1])]);
        let before = c.clone();
        let (report, repaired) = c.sanitize();
        assert!(report.is_clean());
        assert_eq!(repaired, 0);
        assert_eq!(c.documents, before.documents);

        c.documents[1].tokens[0].text.clear();
        let (report, repaired) = c.sanitize();
        assert_eq!(repaired, 1);
        assert_eq!(report.repaired_empty_tokens, 1);
        assert!(c.documents.iter().all(|d| d.validate().is_ok()));
    }

    #[test]
    fn split_spec_default_90_10() {
        let (tr, va) = SplitSpec::default().split(10);
        assert_eq!(tr.len(), 9);
        assert_eq!(va.len(), 1);
    }

    #[test]
    fn split_spec_small_n_keeps_one_train() {
        let (tr, va) = SplitSpec {
            train_fraction: 0.5,
        }
        .split(1);
        assert_eq!(tr.len(), 1);
        assert!(va.is_empty());
        let (tr, va) = SplitSpec::default().split(0);
        assert!(tr.is_empty() && va.is_empty());
    }
}
