//! Tokens: the atomic text elements an OCR engine emits.

use crate::geometry::BBox;
use serde::{Deserialize, Serialize};

/// Index of a token within its document's token list.
pub type TokenId = u32;

/// A single OCR text element: a run of non-whitespace characters together
/// with its bounding box on the page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// The token text as recognized by the (simulated) OCR engine.
    pub text: String,
    /// Spatial position of the token on the page.
    pub bbox: BBox,
}

impl Token {
    /// Creates a token from text and its bounding box.
    pub fn new(text: impl Into<String>, bbox: BBox) -> Self {
        Self {
            text: text.into(),
            bbox,
        }
    }

    /// Lowercased text, used pervasively for phrase matching and features.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// Whether every character is an ASCII digit (after stripping common
    /// numeric punctuation). `"1,234.56"` and `"42"` are numeric; `"Q4"` is
    /// not.
    pub fn is_numeric(&self) -> bool {
        let stripped: String = self
            .text
            .chars()
            .filter(|c| !matches!(c, ',' | '.' | '$' | '(' | ')' | '-' | '%'))
            .collect();
        !stripped.is_empty() && stripped.chars().all(|c| c.is_ascii_digit())
    }

    /// A coarse shape signature: `X` for uppercase, `x` for lowercase, `9`
    /// for digits, other characters kept as-is, with runs collapsed.
    /// `"Amount"` → `"Xx"`, `"$3,308.62"` → `"$9,9.9"`.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        let mut last = '\0';
        for c in self.text.chars() {
            let s = if c.is_ascii_uppercase() {
                'X'
            } else if c.is_ascii_lowercase() {
                'x'
            } else if c.is_ascii_digit() {
                '9'
            } else {
                c
            };
            if s != last {
                out.push(s);
                last = s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(text: &str) -> Token {
        Token::new(text, BBox::new(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn lower_lowercases() {
        assert_eq!(tok("Amount").lower(), "amount");
        assert_eq!(tok("YTD").lower(), "ytd");
    }

    #[test]
    fn numeric_detection() {
        assert!(tok("42").is_numeric());
        assert!(tok("1,234.56").is_numeric());
        assert!(tok("$3,308.62").is_numeric());
        assert!(tok("(12.00)").is_numeric());
        assert!(!tok("Q4").is_numeric());
        assert!(!tok("Amount").is_numeric());
        assert!(!tok("--").is_numeric());
        assert!(!tok("").is_numeric());
    }

    #[test]
    fn shape_collapses_runs() {
        assert_eq!(tok("Amount").shape(), "Xx");
        assert_eq!(tok("YTD").shape(), "X");
        assert_eq!(tok("$3,308.62").shape(), "$9,9.9");
        assert_eq!(tok("2024-01-31").shape(), "9-9-9");
        assert_eq!(tok("a1B2").shape(), "x9X9");
    }

    #[test]
    fn shape_of_empty_is_empty() {
        assert_eq!(tok("").shape(), "");
    }
}
