//! Visual lines: groups of tokens on the same y-axis, as detected by the
//! (simulated) OCR service. Key-phrase inference expands important tokens to
//! the full OCR line they live on (Section II-A3).

use crate::geometry::BBox;
use serde::{Deserialize, Serialize};

/// A detected line of text: the token ids it contains, in left-to-right
/// order, plus the union bounding box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// Token ids belonging to this line, sorted by x-position.
    pub tokens: Vec<u32>,
    /// Union bounding box of the member tokens.
    pub bbox: BBox,
}

impl Line {
    /// Creates a line.
    ///
    /// # Panics
    /// Panics on an empty token list — OCR never emits empty lines.
    pub fn new(tokens: Vec<u32>, bbox: BBox) -> Self {
        assert!(!tokens.is_empty(), "empty OCR line");
        Self { tokens, bbox }
    }

    /// Number of tokens on the line.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Lines are non-empty by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the line contains `token`.
    pub fn contains(&self, token: u32) -> bool {
        self.tokens.contains(&token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let l = Line::new(vec![3, 4, 5], BBox::new(0.0, 0.0, 100.0, 12.0));
        assert_eq!(l.len(), 3);
        assert!(l.contains(4));
        assert!(!l.contains(6));
    }

    #[test]
    #[should_panic(expected = "empty OCR line")]
    fn empty_line_panics() {
        Line::new(vec![], BBox::default());
    }
}
