//! Extraction schemas: the predefined set of fields a document type exposes,
//! each categorized into one of five base types (Section I of the paper).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a field within its schema.
pub type FieldId = u16;

/// The five base types the paper assigns to every field. `String` is the
/// catch-all for anything that is not a date, number, money amount, or
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BaseType {
    /// Multi-line postal addresses.
    Address,
    /// Calendar dates in any surface format.
    Date,
    /// Currency amounts.
    Money,
    /// Plain numbers (counts, identifiers rendered numerically).
    Number,
    /// The catch-all for any other value.
    String,
}

impl BaseType {
    /// All base types in the paper's canonical (Table II) column order.
    pub const ALL: [BaseType; 5] = [
        BaseType::Address,
        BaseType::Date,
        BaseType::Money,
        BaseType::Number,
        BaseType::String,
    ];
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BaseType::Address => "address",
            BaseType::Date => "date",
            BaseType::Money => "money",
            BaseType::Number => "number",
            BaseType::String => "string",
        };
        f.write_str(s)
    }
}

/// Definition of a single schema field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Dotted human-readable name, e.g. `current.salary`.
    pub name: String,
    /// The field's base type.
    pub base_type: BaseType,
}

impl FieldDef {
    /// Creates a field definition.
    pub fn new(name: impl Into<String>, base_type: BaseType) -> Self {
        Self {
            name: name.into(),
            base_type,
        }
    }
}

/// An extraction schema: the blueprint of fields for one document type
/// (domain). Field ids are indices into the schema's field list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Name of the document type, e.g. `"earnings"`.
    pub domain: String,
    fields: Vec<FieldDef>,
    #[serde(skip)]
    by_name: HashMap<String, FieldId>,
}

impl Schema {
    /// Builds a schema from a domain name and field definitions.
    ///
    /// # Panics
    /// Panics if two fields share a name or if there are more than
    /// `FieldId::MAX` fields — schemas are static program data, so a
    /// duplicate is a programming error.
    pub fn new(domain: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        assert!(fields.len() <= FieldId::MAX as usize, "too many fields");
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            let prev = by_name.insert(f.name.clone(), i as FieldId);
            assert!(prev.is_none(), "duplicate field name: {}", f.name);
        }
        Self {
            domain: domain.into(),
            fields,
            by_name,
        }
    }

    /// Number of fields in the schema.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The definition for `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id as usize]
    }

    /// Looks a field up by name.
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.by_name.get(name).copied()
    }

    /// Iterates `(id, def)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldDef)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| (i as FieldId, f))
    }

    /// All field ids with the given base type.
    pub fn fields_of_type(&self, ty: BaseType) -> Vec<FieldId> {
        self.iter()
            .filter(|(_, f)| f.base_type == ty)
            .map(|(id, _)| id)
            .collect()
    }

    /// Count of fields per base type, in [`BaseType::ALL`] order — the rows
    /// of the paper's Table II.
    pub fn type_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for f in &self.fields {
            let idx = BaseType::ALL
                .iter()
                .position(|t| *t == f.base_type)
                .unwrap();
            h[idx] += 1;
        }
        h
    }

    /// Rebuilds the name index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as FieldId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "paystub",
            vec![
                FieldDef::new("current.salary", BaseType::Money),
                FieldDef::new("current.bonus", BaseType::Money),
                FieldDef::new("period_start", BaseType::Date),
                FieldDef::new("employee_name", BaseType::String),
                FieldDef::new("employee_address", BaseType::Address),
            ],
        )
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = sample();
        let id = s.field_id("current.bonus").unwrap();
        assert_eq!(s.field(id).name, "current.bonus");
        assert_eq!(s.field(id).base_type, BaseType::Money);
        assert!(s.field_id("nope").is_none());
    }

    #[test]
    fn fields_of_type_filters() {
        let s = sample();
        let money = s.fields_of_type(BaseType::Money);
        assert_eq!(money.len(), 2);
        assert_eq!(s.fields_of_type(BaseType::Number), Vec::<FieldId>::new());
    }

    #[test]
    fn type_histogram_matches_table2_order() {
        let s = sample();
        // [address, date, money, number, string]
        assert_eq!(s.type_histogram(), [1, 1, 2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_panic() {
        Schema::new(
            "x",
            vec![
                FieldDef::new("a", BaseType::Money),
                FieldDef::new("a", BaseType::Date),
            ],
        );
    }

    #[test]
    fn iter_is_in_id_order() {
        let s = sample();
        let names: Vec<_> = s.iter().map(|(_, f)| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "current.salary",
                "current.bonus",
                "period_start",
                "employee_name",
                "employee_address"
            ]
        );
    }

    #[test]
    fn display_base_types() {
        let strs: Vec<String> = BaseType::ALL.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["address", "date", "money", "number", "string"]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new("empty", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.type_histogram(), [0; 5]);
    }
}
